/**
 * @file
 * Telecommunication kernel builders substituting CommBench: block
 * cipher, DRR packet scheduling, IP fragmentation, JPEG-style DCT,
 * Reed-Solomon coding, radix-trie route lookup, checksumming, and LZ77.
 *
 * CommBench programs are small header/payload kernels: tiny instruction
 * working sets, table-driven data access, and (for the payload codecs)
 * tight serial dependence chains.
 */

#include "workloads/kernel_lib.hh"

#include "isa/assembler.hh"

namespace mica::workloads::kernels
{

using namespace isa;
using namespace isa::reg;

isa::Program
blockCipher(const BlockCipherParams &p)
{
    Assembler a("blockCipher");

    const uint64_t buf = a.dataU8(randomBytes(p.bufBytes, 0, p.seed));
    const uint64_t sbox = a.dataU8(randomBytes(256, 0, p.seed * 3 + 1));
    std::vector<uint64_t> keys(8);
    HostRng rng(p.seed * 5 + 2);
    for (auto &k : keys)
        k = rng.next();
    const uint64_t keyArr = a.dataU64(keys);

    // S0 buf ptr, S1 sbox, S2 keys, S3 word idx, S4 words, S5 L,
    // S6 R, S7 round, S8 rounds, S9 iters; T0..T5 temps.
    const size_t words = p.bufBytes / 8;
    a.li(S9, p.iters);
    a.li(S4, static_cast<int64_t>(words));
    a.li(S8, p.rounds);
    a.li(S1, static_cast<int64_t>(sbox));
    a.li(S2, static_cast<int64_t>(keyArr));

    a.label("iter");
    a.li(S0, static_cast<int64_t>(buf));
    a.li(S3, 0);

    a.label("block");
    a.ld(T0, S0, 0);                    // 64-bit block
    a.shri(S5, T0, 32);                 // L
    a.li(T1, 0xffffffff);
    a.and_(S6, T0, T1);                 // R

    a.li(S7, 0);
    a.label("round");
    // Round function: key mix, S-box substitution, diffusion shifts.
    a.andi(T0, S7, 7);
    a.shli(T0, T0, 3);
    a.add(T0, S2, T0);
    a.ld(T1, T0, 0);                    // round key
    a.xor_(T2, S6, T1);
    a.andi(T3, T2, 0xff);
    a.add(T3, S1, T3);
    a.lbu(T3, T3, 0);                   // sbox[(R ^ k) & 0xff]
    a.shri(T4, T2, 8);
    a.andi(T4, T4, 0xff);
    a.add(T4, S1, T4);
    a.lbu(T4, T4, 0);
    a.shli(T4, T4, 8);
    a.or_(T3, T3, T4);
    a.shli(T5, S6, 3);
    a.xor_(T3, T3, T5);
    a.shri(T5, S6, 5);
    a.xor_(T3, T3, T5);                 // f(R, k)
    // Feistel swap (decrypt runs the identical structure; the paper's
    // cipher kernels differ only in key schedule direction).
    a.mv(T5, S6);
    a.xor_(S6, S5, T3);
    a.mv(S5, T5);
    a.addi(S7, S7, p.decrypt ? 2 : 1);
    a.blt(S7, S8, "round");

    a.shli(T0, S5, 32);
    a.li(T1, 0xffffffff);
    a.and_(T2, S6, T1);
    a.or_(T0, T0, T2);
    a.sd(T0, S0, 0);                    // write the block back

    a.addi(S0, S0, 8);
    a.addi(S3, S3, 1);
    a.blt(S3, S4, "block");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
queueScheduler(const QueueSchedParams &p)
{
    Assembler a("queueScheduler");

    // Packet nodes: 16 bytes {next, len}; per-queue circular lists.
    // Queue table: 16 bytes {head, deficit}.
    HostRng rng(p.seed);
    const size_t numPkts = p.numQueues * p.pktsPerQueue;
    std::vector<uint64_t> nodes(numPkts * 2);
    const uint64_t nodesBase = Program::kDataBase;  // allocated first
    for (size_t q = 0; q < p.numQueues; ++q) {
        for (size_t i = 0; i < p.pktsPerQueue; ++i) {
            const size_t idx = q * p.pktsPerQueue + i;
            const size_t nxt = q * p.pktsPerQueue +
                (i + 1) % p.pktsPerQueue;
            nodes[idx * 2] = nodesBase + nxt * 16;
            nodes[idx * 2 + 1] = 64 + rng.bounded(1400);    // pkt len
        }
    }
    const uint64_t nodesAddr = a.dataU64(nodes);
    (void)nodesAddr;    // == nodesBase by construction

    std::vector<uint64_t> queues(p.numQueues * 2);
    for (size_t q = 0; q < p.numQueues; ++q) {
        queues[q * 2] = nodesBase + q * p.pktsPerQueue * 16;
        queues[q * 2 + 1] = 0;
    }
    const uint64_t queueTable = a.dataU64(queues);

    // S0 queue table, S1 q, S2 numQueues, S3 deficit, S4 head,
    // S5 quantum, S6 served count, S7 &queue[q], S9 rounds.
    a.li(S9, static_cast<int64_t>(p.iters * p.numQueues));
    a.li(S0, static_cast<int64_t>(queueTable));
    a.li(S2, static_cast<int64_t>(p.numQueues));
    a.li(S5, p.quantum);
    a.li(S1, 0);
    a.li(S6, 0);

    a.label("round");
    a.shli(T0, S1, 4);
    a.add(S7, S0, T0);                  // &queue[q]
    a.ld(S4, S7, 0);                    // head
    a.ld(S3, S7, 8);                    // deficit
    a.add(S3, S3, S5);                  // deficit += quantum

    a.label("serve");
    a.ld(T1, S4, 8);                    // pkt len
    a.blt(S3, T1, "deq_done");          // data-dependent: can we send?
    a.sub(S3, S3, T1);
    a.ld(S4, S4, 0);                    // head = head->next
    a.addi(S6, S6, 1);
    a.j("serve");
    a.label("deq_done");

    a.sd(S4, S7, 0);
    a.sd(S3, S7, 8);

    a.addi(S1, S1, 1);
    a.blt(S1, S2, "no_wrap");
    a.li(S1, 0);
    a.label("no_wrap");

    a.addi(S9, S9, -1);
    a.bnez(S9, "round");
    a.halt();
    return a.finish();
}

isa::Program
packetFrag(const PacketFragParams &p)
{
    Assembler a("packetFrag");

    const uint64_t pkt = a.dataU8(randomBytes(p.pktBytes, 0, p.seed));
    const size_t numFrags = (p.pktBytes + p.mtu - 1) / p.mtu;
    const uint64_t out = a.reserve((p.mtu + 32) * numFrags + 64);

    // S0 src, S1 dst, S2 remaining, S3 frag size, S4 offset, S5 id,
    // S6 mtu, S9 iters; T0..T3 temps.
    a.li(S9, p.iters);
    a.li(S6, static_cast<int64_t>(p.mtu));
    a.li(S5, 0x4242);

    a.label("iter");
    a.li(S0, static_cast<int64_t>(pkt));
    a.li(S1, static_cast<int64_t>(out));
    a.li(S2, static_cast<int64_t>(p.pktBytes));
    a.li(S4, 0);

    a.label("frag");
    a.mv(S3, S6);                       // frag = mtu
    a.bge(S2, S3, "size_ok");
    a.mv(S3, S2);                       // last fragment
    a.label("size_ok");

    // Fragment header: id, offset, flags+length.
    a.sw(S5, S1, 0);
    a.sw(S4, S1, 4);
    a.sw(S3, S1, 8);
    a.addi(S1, S1, 16);

    // Payload copy, 8 bytes at a time (fragment sizes are 8-aligned
    // except possibly the tail, which the word copy rounds up over).
    a.addi(T0, S3, 7);
    a.sari(T0, T0, 3);                  // words to copy
    a.label("copy");
    a.ld(T1, S0, 0);
    a.sd(T1, S1, 0);
    a.addi(S0, S0, 8);
    a.addi(S1, S1, 8);
    a.addi(T0, T0, -1);
    a.bnez(T0, "copy");

    a.add(S4, S4, S3);
    a.sub(S2, S2, S3);
    a.bnez(S2, "frag");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
dct8x8(const DctParams &p)
{
    Assembler a(p.inverse ? "idct8x8" : "dct8x8");

    const uint64_t blocks = a.dataU64([&] {
        HostRng rng(p.seed);
        std::vector<uint64_t> v(p.blocks * 64);
        for (auto &x : v)
            x = rng.bounded(256);
        return v;
    }());
    std::vector<uint64_t> quant(64);
    {
        HostRng rng(p.seed * 7 + 3);
        for (auto &q : quant)
            q = 8 + rng.bounded(56);
    }
    const uint64_t qtable = a.dataU64(quant);

    // Fixed-point cosine constants (x256).
    const int c2 = 237, c6 = 98, c1 = 251, c3 = 213, c5 = 142, c7 = 50;

    // Emit one 8-point butterfly pass on T0..T7 loaded from base S0
    // with the given element stride (in bytes).
    const auto pass1d = [&](int stride) {
        for (int i = 0; i < 8; ++i)
            a.ld(static_cast<uint8_t>(T0 + i), S0, i * stride);
        // Even part: sums and differences.
        a.add(A0, T0, T7);              // s0
        a.add(A1, T1, T6);              // s1
        a.add(A2, T2, T5);              // s2
        a.add(A3, T3, T4);              // s3
        a.sub(T7, T0, T7);              // d0
        a.sub(T6, T1, T6);              // d1
        a.sub(T5, T2, T5);              // d2
        a.sub(T4, T3, T4);              // d3
        a.add(T0, A0, A3);
        a.add(T1, A1, A2);
        a.sub(A0, A0, A3);              // s0 - s3
        a.sub(A1, A1, A2);              // s1 - s2
        a.add(T2, T0, T1);              // y0
        a.sub(T3, T0, T1);              // y4
        a.muli(T0, A0, c2);
        a.muli(T1, A1, c6);
        a.add(T0, T0, T1);
        a.sari(T0, T0, 8);              // y2
        a.muli(A2, A0, c6);
        a.muli(A3, A1, c2);
        a.sub(A2, A2, A3);
        a.sari(A2, A2, 8);              // y6
        // Odd part (rotations folded into two mul pairs).
        a.muli(A0, T7, c1);
        a.muli(A1, T6, c3);
        a.add(A0, A0, A1);
        a.muli(A1, T5, c5);
        a.add(A0, A0, A1);
        a.muli(A1, T4, c7);
        a.add(A0, A0, A1);
        a.sari(A0, A0, 8);              // y1
        a.muli(A1, T7, c3);
        a.muli(A3, T6, c7);
        a.sub(A1, A1, A3);
        a.muli(A3, T5, c1);
        a.sub(A1, A1, A3);
        a.muli(A3, T4, c5);
        a.add(A1, A1, A3);
        a.sari(A1, A1, 8);              // y3
        a.muli(A3, T7, c5);
        a.muli(A4, T6, c1);
        a.sub(A3, A3, A4);
        a.muli(A4, T5, c7);
        a.add(A3, A3, A4);
        a.sari(A3, A3, 8);              // y5
        a.muli(A4, T7, c7);
        a.muli(A5, T6, c5);
        a.sub(A4, A4, A5);
        a.muli(A5, T5, c3);
        a.sub(A4, A4, A5);
        a.sari(A4, A4, 8);              // y7
        a.sd(T2, S0, 0 * stride);
        a.sd(A0, S0, 1 * stride);
        a.sd(T0, S0, 2 * stride);
        a.sd(A1, S0, 3 * stride);
        a.sd(T3, S0, 4 * stride);
        a.sd(A3, S0, 5 * stride);
        a.sd(A2, S0, 6 * stride);
        a.sd(A4, S0, 7 * stride);
    };

    // S8 block index, S7 row/col index, S6 quant base, S9 iters.
    a.li(S9, p.iters);
    a.li(S6, static_cast<int64_t>(qtable));

    a.label("iter");
    a.li(S8, 0);

    a.label("block");
    a.li(S1, static_cast<int64_t>(blocks));
    a.li(T8, 64 * 8);
    a.mul(T9, S8, T8);
    a.add(S1, S1, T9);                  // block base

    // Row pass: 8 rows, elements contiguous (stride 8 bytes).
    a.li(S7, 0);
    a.label("rows");
    a.shli(T8, S7, 6);                  // row * 64 bytes
    a.add(S0, S1, T8);
    pass1d(8);
    a.addi(S7, S7, 1);
    a.slti(T8, S7, 8);
    a.bnez(T8, "rows");

    // Column pass: stride 64 bytes between elements.
    a.li(S7, 0);
    a.label("cols");
    a.shli(T8, S7, 3);
    a.add(S0, S1, T8);
    pass1d(64);
    a.addi(S7, S7, 1);
    a.slti(T8, S7, 8);
    a.bnez(T8, "cols");

    // Quantize (forward) or dequantize (inverse): divide/multiply by
    // the table entry, with a clamping branch on the forward path.
    a.li(S7, 0);
    a.label("quant");
    a.shli(T8, S7, 3);
    a.add(T9, S1, T8);
    a.ld(T0, T9, 0);
    a.add(T1, S6, T8);
    a.ld(T1, T1, 0);
    if (p.inverse) {
        a.mul(T0, T0, T1);
        a.sari(T0, T0, 4);
    } else {
        a.div(T0, T0, T1);
        const std::string noClamp = a.newLabel("nc");
        a.li(T2, 1024);
        a.blt(T0, T2, noClamp);
        a.mv(T0, T2);
        a.label(noClamp);
    }
    a.sd(T0, T9, 0);
    a.addi(S7, S7, 1);
    a.slti(T8, S7, 64);
    a.bnez(T8, "quant");

    a.addi(S8, S8, 1);
    a.li(T8, static_cast<int64_t>(p.blocks));
    a.blt(S8, T8, "block");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
gfReedSolomon(const ReedSolomonParams &p)
{
    Assembler a(p.decode ? "rsDecode" : "rsEncode");

    const uint64_t data = a.dataU8(randomBytes(p.dataBytes, 0, p.seed));
    const uint64_t gflog = a.dataU8(randomBytes(256, 255, p.seed * 3));
    const uint64_t gfexp = a.dataU8(randomBytes(512, 255, p.seed * 5));
    const uint64_t gen = a.dataU8(randomBytes(p.parityBytes, 255,
                                              p.seed * 7));
    const uint64_t parity = a.reserve(p.parityBytes + 8);

    // S0 data ptr, S1 gflog, S2 gfexp, S3 gen, S4 parity, S5 i,
    // S6 dataBytes, S7 parityBytes, S8 feedback, S9 iters.
    a.li(S9, p.iters);
    a.li(S6, static_cast<int64_t>(p.dataBytes));
    a.li(S7, static_cast<int64_t>(p.parityBytes));
    a.li(S1, static_cast<int64_t>(gflog));
    a.li(S2, static_cast<int64_t>(gfexp));
    a.li(S3, static_cast<int64_t>(gen));
    a.li(S4, static_cast<int64_t>(parity));

    a.label("iter");
    a.li(S0, static_cast<int64_t>(data));
    a.li(S5, 0);

    if (p.decode) {
        // Syndrome accumulation: s_k = s_k * alpha^k + d for each of
        // the parity positions — all table lookups, no parity shifting.
        a.label("byte");
        a.lbu(S8, S0, 0);               // data byte
        a.li(T0, 0);                    // k
        a.label("syn");
        a.add(T1, S4, T0);
        a.lbu(T2, T1, 0);               // s_k
        a.add(T3, T2, T0);
        a.andi(T3, T3, 0x1ff);
        a.add(T3, S2, T3);
        a.lbu(T2, T3, 0);               // s_k * alpha^k via exp table
        a.xor_(T2, T2, S8);
        a.sb(T2, T1, 0);
        a.addi(T0, T0, 1);
        a.blt(T0, S7, "syn");
        a.addi(S0, S0, 1);
        a.addi(S5, S5, 1);
        a.blt(S5, S6, "byte");
    } else {
        // LFSR encode: feedback = d ^ parity[0]; parity shifts left
        // with generator-scaled feedback folded in (data-dependent
        // skip when the feedback is zero).
        a.label("byte");
        a.lbu(T0, S0, 0);
        a.lbu(T1, S4, 0);
        a.xor_(S8, T0, T1);             // feedback
        const std::string zeroFb = a.newLabel("zf");
        a.beqz(S8, zeroFb);
        a.add(T2, S1, S8);
        a.lbu(T2, T2, 0);               // log(feedback)
        a.li(T3, 0);                    // j
        a.label("mix");
        a.add(T4, S3, T3);
        a.lbu(T4, T4, 0);               // log(gen[j])
        a.add(T4, T4, T2);
        a.andi(T4, T4, 0x1ff);
        a.add(T4, S2, T4);
        a.lbu(T4, T4, 0);               // exp(log g + log f)
        a.add(T5, S4, T3);
        a.lbu(T6, T5, 1);               // parity[j+1]
        a.xor_(T6, T6, T4);
        a.sb(T6, T5, 0);                // parity[j] = parity[j+1] ^ t
        a.addi(T3, T3, 1);
        a.blt(T3, S7, "mix");
        a.j("next");
        a.label(zeroFb);
        // Zero feedback: plain left shift of the parity register.
        a.li(T3, 0);
        a.label("shift");
        a.add(T5, S4, T3);
        a.lbu(T6, T5, 1);
        a.sb(T6, T5, 0);
        a.addi(T3, T3, 1);
        a.blt(T3, S7, "shift");
        a.label("next");
        a.addi(S0, S0, 1);
        a.addi(S5, S5, 1);
        a.blt(S5, S6, "byte");
    }

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
trieLookup(const TrieLookupParams &p)
{
    Assembler a("trieLookup");

    // Nodes are 32 bytes: {child0, child1, value, pad}. Children point
    // to strictly higher indices (acyclic); 0 terminates the walk.
    HostRng rng(p.seed);
    std::vector<uint64_t> nodes(p.trieNodes * 4, 0);
    for (size_t i = 0; i < p.trieNodes; ++i) {
        const size_t remain = p.trieNodes - i - 1;
        if (remain > 2) {
            if (rng.bounded(8) != 0)
                nodes[i * 4] = i + 1 + rng.bounded(remain);
            if (rng.bounded(8) != 0)
                nodes[i * 4 + 1] = i + 1 + rng.bounded(remain);
        }
        nodes[i * 4 + 2] = rng.next() & 0xffff;
    }
    const uint64_t trie = a.dataU64(nodes);

    std::vector<uint64_t> keys(p.numKeys);
    for (auto &k : keys)
        k = rng.next();
    const uint64_t keyArr = a.dataU64(keys);

    // S0 keys, S1 trie, S2 key idx, S3 node ptr, S4 key, S5 depth,
    // S6 numKeys, S7 maxDepth, S8 result acc, S9 iters.
    a.li(S9, p.iters);
    a.li(S6, static_cast<int64_t>(p.numKeys));
    a.li(S7, p.maxDepth);
    a.li(S8, 0);

    a.label("iter");
    a.li(S0, static_cast<int64_t>(keyArr));
    a.li(S2, 0);

    a.label("key");
    a.shli(T0, S2, 3);
    a.add(T0, S0, T0);
    a.ld(S4, T0, 0);                    // key bits
    a.li(S1, static_cast<int64_t>(trie));
    a.mv(S3, S1);                       // node = root
    a.li(S5, 0);

    a.label("walk");
    a.and_(T1, S4, Zero);               // placeholder for clarity
    a.andi(T1, S4, 1);
    a.shri(S4, S4, 1);
    a.shli(T1, T1, 3);                  // bit ? 8 : 0
    a.add(T2, S3, T1);
    a.ld(T3, T2, 0);                    // child index
    a.beqz(T3, "miss");                 // data-dependent walk end
    a.shli(T3, T3, 5);                  // * 32 bytes
    a.add(S3, S1, T3);
    a.addi(S5, S5, 1);
    a.blt(S5, S7, "walk");
    a.label("miss");
    a.ld(T4, S3, 16);                   // leaf value
    a.add(S8, S8, T4);

    a.addi(S2, S2, 1);
    a.blt(S2, S6, "key");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
checksum(const ChecksumParams &p)
{
    Assembler a("checksum");

    const size_t pktStride = (p.pktBytes + 7) & ~7ull;
    const uint64_t bufs = a.dataU8(randomBytes(pktStride * p.numPkts, 0,
                                               p.seed));

    // S0 pkt base, S1 half-word index, S2 sum, S3 pkt idx, S4 numPkts,
    // S5 halfwords, S9 iters.
    a.li(S9, p.iters);
    a.li(S4, static_cast<int64_t>(p.numPkts));
    a.li(S5, static_cast<int64_t>(p.pktBytes / 2));

    a.label("iter");
    a.li(S3, 0);

    a.label("pkt");
    a.li(S0, static_cast<int64_t>(bufs));
    a.li(T0, static_cast<int64_t>(pktStride));
    a.mul(T1, S3, T0);
    a.add(S0, S0, T1);

    // Ones-complement sum over 16-bit words.
    a.li(S2, 0);
    a.li(S1, 0);
    a.label("sum");
    a.shli(T2, S1, 1);
    a.add(T2, S0, T2);
    a.lhu(T3, T2, 0);
    a.add(S2, S2, T3);
    a.addi(S1, S1, 1);
    a.blt(S1, S5, "sum");

    // Fold carries twice, then write the checksum and patch the TTL.
    a.shri(T2, S2, 16);
    a.andi(S2, S2, 0xffff);
    a.add(S2, S2, T2);
    a.shri(T2, S2, 16);
    a.andi(S2, S2, 0xffff);
    a.add(S2, S2, T2);
    a.sh(S2, S0, 10);                   // checksum field
    a.lbu(T3, S0, 8);                   // TTL
    a.addi(T3, T3, -1);
    a.sb(T3, S0, 8);

    a.addi(S3, S3, 1);
    a.blt(S3, S4, "pkt");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
lz77(const Lz77Params &p)
{
    Assembler a(p.decode ? "lzDecode" : "lzEncode");

    if (!p.decode) {
        const uint64_t buf = a.dataU8(randomBytes(p.bufBytes, p.alphabet,
                                                  p.seed));
        const size_t headSlots = 4096;
        const uint64_t head = a.reserve(headSlots * 8);
        const uint64_t out = a.reserveLazy(p.bufBytes + 64);
        const uint64_t window = p.windowBytes;

        // S0 buf, S1 head table, S2 pos, S3 out ptr, S4 end,
        // S5 candidate, S6 match len, S7 window, S8 scratch, S9 iters.
        a.li(S9, p.iters);
        a.li(S7, static_cast<int64_t>(window));

        a.label("iter");
        a.li(S0, static_cast<int64_t>(buf));
        a.li(S1, static_cast<int64_t>(head));
        a.li(S3, static_cast<int64_t>(out));
        a.li(S2, 0);
        a.li(S4, static_cast<int64_t>(p.bufBytes - 4));

        a.label("step");
        // Hash the next three bytes.
        a.add(T0, S0, S2);
        a.lbu(T1, T0, 0);
        a.lbu(T2, T0, 1);
        a.lbu(T3, T0, 2);
        a.shli(T2, T2, 5);
        a.shli(T3, T3, 10);
        a.xor_(T1, T1, T2);
        a.xor_(T1, T1, T3);
        a.andi(T1, T1, 0xfff);
        a.shli(T1, T1, 3);
        a.add(T1, S1, T1);              // &head[h]
        a.ld(S5, T1, 0);                // candidate pos + 1
        a.addi(T4, S2, 1);
        a.sd(T4, T1, 0);                // head[h] = pos + 1

        const std::string literal = a.newLabel("lit");
        const std::string advance = a.newLabel("adv");
        a.beqz(S5, literal);
        a.addi(S5, S5, -1);
        a.sub(T5, S2, S5);              // backward distance
        a.bge(T5, S7, literal);         // outside the window

        // Compare up to 16 bytes (data-dependent match loop).
        a.li(S6, 0);
        const std::string cmpDone = a.newLabel("cd");
        a.label("cmp");
        a.add(T6, S0, S5);
        a.add(T6, T6, S6);
        a.lbu(T6, T6, 0);
        a.add(T7, S0, S2);
        a.add(T7, T7, S6);
        a.lbu(T7, T7, 0);
        a.bne(T6, T7, cmpDone);
        a.addi(S6, S6, 1);
        a.slti(T6, S6, 16);
        a.bnez(T6, "cmp");
        a.label(cmpDone);

        a.slti(T6, S6, 3);
        a.bnez(T6, literal);            // too short: emit literal

        // Emit (distance, length) token and skip the matched bytes.
        a.sh(T5, S3, 0);
        a.sb(S6, S3, 2);
        a.addi(S3, S3, 3);
        a.add(S2, S2, S6);
        a.j(advance);

        a.label(literal);
        a.add(T0, S0, S2);
        a.lbu(T1, T0, 0);
        a.sb(T1, S3, 0);
        a.addi(S3, S3, 1);
        a.addi(S2, S2, 1);

        a.label(advance);
        a.blt(S2, S4, "step");

        a.addi(S9, S9, -1);
        a.bnez(S9, "iter");
        a.halt();
        return a.finish();
    }

    // Decode: host-generated token stream of literals and matches.
    HostRng rng(p.seed);
    std::vector<uint8_t> tokens;
    size_t produced = 0;
    while (produced < p.bufBytes) {
        if (produced < 256 || rng.bounded(100) < 55) {
            tokens.push_back(0x00);
            tokens.push_back(static_cast<uint8_t>(
                rng.bounded(p.alphabet ? p.alphabet : 256)));
            produced += 1;
        } else {
            const unsigned len = 3 + rng.bounded(14);
            const unsigned dist = 1 + rng.bounded(
                std::min<size_t>(produced - 1, p.windowBytes - 1));
            tokens.push_back(0x01);
            tokens.push_back(static_cast<uint8_t>(len));
            tokens.push_back(static_cast<uint8_t>(dist & 0xff));
            tokens.push_back(static_cast<uint8_t>(dist >> 8));
            produced += len;
        }
    }
    tokens.push_back(0xff);            // terminator
    const uint64_t tok = a.dataU8(tokens);
    const uint64_t out = a.reserveLazy(produced + 64);

    // S0 token ptr, S1 out ptr, S2 len, S3 dist, S4 copy src, S9 iters.
    a.li(S9, p.iters);

    a.label("iter");
    a.li(S0, static_cast<int64_t>(tok));
    a.li(S1, static_cast<int64_t>(out));

    a.label("tok");
    a.lbu(T0, S0, 0);
    a.li(T1, 0xff);
    a.beq(T0, T1, "done");
    a.bnez(T0, "match");

    a.lbu(T2, S0, 1);                   // literal byte
    a.sb(T2, S1, 0);
    a.addi(S1, S1, 1);
    a.addi(S0, S0, 2);
    a.j("tok");

    a.label("match");
    a.lbu(S2, S0, 1);                   // length
    a.lbu(S3, S0, 2);
    a.lbu(T3, S0, 3);
    a.shli(T3, T3, 8);
    a.or_(S3, S3, T3);                  // distance
    a.sub(S4, S1, S3);                  // copy source
    a.label("copy");
    a.lbu(T4, S4, 0);
    a.sb(T4, S1, 0);
    a.addi(S4, S4, 1);
    a.addi(S1, S1, 1);
    a.addi(S2, S2, -1);
    a.bnez(S2, "copy");
    a.addi(S0, S0, 4);
    a.j("tok");

    a.label("done");
    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

} // namespace mica::workloads::kernels
