/**
 * @file
 * Multimedia kernel builders substituting MediaBench: wavelet coding
 * (epic/unepic), ADPCM voice codecs (adpcm/g721), a PostScript-style
 * bytecode interpreter (ghostscript), perspective texture mapping
 * (mesa), and block motion estimation (mpeg2).
 */

#include "workloads/kernel_lib.hh"

#include <cstring>
#include <functional>

#include "isa/assembler.hh"

namespace mica::workloads::kernels
{

using namespace isa;
using namespace isa::reg;

namespace
{

/** Load a double constant into FP register fr through a stack slot. */
void
fimm(Assembler &a, uint8_t fr, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    a.li(T9, static_cast<int64_t>(bits));
    a.sd(T9, Sp, -8);
    a.fld(fr, Sp, -8);
}

} // namespace

isa::Program
waveletTransform(const WaveletParams &p)
{
    Assembler a(p.inverse ? "unwavelet" : "wavelet");

    const uint64_t sig = a.dataF64(randomDoubles(p.n, -1.0, 1.0, p.seed));

    // Lifting scheme: predict/update passes with stride doubling per
    // level — the power-of-two global stride ladder is this kernel's
    // signature in the stride characteristics.
    // S0 base, S1 i, S2 step bytes, S3 pair stride, S4 limit,
    // S5 level, S6 levels, S9 iters; f0 a, f1 b, f2 detail, f3 smooth,
    // f4 predict coef, f5 update coef.
    a.li(S9, p.iters);
    a.li(S6, p.levels);
    fimm(a, 4, p.inverse ? -0.5 : 0.5);
    fimm(a, 5, p.inverse ? -0.25 : 0.25);
    fimm(a, 7, 0.04);                   // dead-zone threshold

    a.label("iter");
    a.li(S5, 0);
    a.li(S2, 8);                        // step = 1 element

    a.label("level");
    a.shli(S3, S2, 1);                  // pair stride
    a.li(S0, static_cast<int64_t>(sig));
    a.li(S4, static_cast<int64_t>(sig + p.n * 8));
    a.sub(S4, S4, S2);                  // last valid pair base

    a.label("pair");
    a.fld(0, S0, 0);                    // even sample
    a.add(T0, S0, S2);
    a.fld(1, T0, 0);                    // odd sample
    a.fmul(2, 0, 4);
    a.fsub(2, 1, 2);                    // d = b - P*a
    a.fmul(3, 2, 5);
    a.fadd(3, 0, 3);                    // s = a + U*d
    // Dead-zone quantization of the detail coefficient: the branch
    // depends on the signal content, which is what distinguishes the
    // encoder (epic) from the decoder (unepic) and input sets from
    // one another.
    a.fabs_(6, 2);
    a.fclt(T1, 6, 7);                   // |d| < deadzone?
    const std::string keep = a.newLabel("kp");
    a.beqz(T1, keep);
    if (p.inverse)
        a.fadd(2, 2, 2);                // decoder: expand small details
    else
        a.fsub(2, 2, 2);                // encoder: zero small details
    a.label(keep);
    a.fsd(3, S0, 0);
    a.fsd(2, T0, 0);
    a.add(S0, S0, S3);
    a.blt(S0, S4, "pair");

    a.shli(S2, S2, 1);                  // step *= 2
    a.addi(S5, S5, 1);
    a.blt(S5, S6, "level");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
adpcmCodec(const AdpcmParams &p)
{
    Assembler a(p.decode ? "adpcmDecode" : "adpcmEncode");

    // 16-bit input samples (decode reads 4-bit codes from the same
    // buffer); step-size and index-adjust tables as in IMA ADPCM.
    const uint64_t input = a.dataU8(randomBytes(p.samples * 2, 0,
                                                p.seed));
    std::vector<uint64_t> steps(p.g721 ? 128 : 89);
    for (size_t i = 0; i < steps.size(); ++i)
        steps[i] = static_cast<uint64_t>(7.0 * (1.0 + 0.1 * double(i)) *
                                         (1.0 + 0.05 * double(i)));
    const uint64_t stepTable = a.dataU64(steps);
    static const std::vector<uint8_t> idxAdj =
        {8, 6, 4, 2, 253, 251, 249, 247};   // -8..-2 two's complement
    const uint64_t idxTable = a.dataU8(idxAdj);
    const uint64_t out = a.reserveLazy(p.samples + 16);

    // S0 in, S1 out, S2 i, S3 valpred, S4 index, S5 step, S6 delta,
    // S7 samples, S8 maxIndex, S9 iters.
    a.li(S9, p.iters);
    a.li(S7, static_cast<int64_t>(p.samples));
    a.li(S8, static_cast<int64_t>(steps.size() - 1));

    a.label("iter");
    a.li(S0, static_cast<int64_t>(input));
    a.li(S1, static_cast<int64_t>(out));
    a.li(S3, 0);                        // predictor
    a.li(S4, 0);                        // step index
    a.li(S2, 0);

    a.label("sample");
    // step = stepTable[index]
    a.shli(T0, S4, 3);
    a.li(T1, static_cast<int64_t>(stepTable));
    a.add(T0, T0, T1);
    a.ld(S5, T0, 0);

    if (p.decode) {
        a.lbu(S6, S0, 0);
        a.andi(S6, S6, 0x0f);           // 4-bit code
    } else {
        a.lh(T2, S0, 0);                // input sample
        a.sub(S6, T2, S3);              // delta = sample - valpred
    }

    // Sign handling (data-dependent branch on the audio waveform).
    const std::string positive = a.newLabel("pos");
    const std::string signDone = a.newLabel("sd");
    a.li(A0, 0);                        // sign flag
    if (p.decode) {
        a.andi(T3, S6, 8);
        a.beqz(T3, positive);
        a.li(A0, 1);
        a.andi(S6, S6, 7);
        a.j(signDone);
    } else {
        a.bge(S6, Zero, positive);
        a.li(A0, 1);
        a.sub(S6, Zero, S6);
        a.j(signDone);
    }
    a.label(positive);
    a.label(signDone);

    // Quantize / reconstruct through three halving levels, each with a
    // data-dependent branch (the serial heart of ADPCM).
    a.shri(A1, S5, 3);                  // vpdiff = step >> 3
    a.li(A2, 0);                        // code bits
    if (!p.decode) {
        for (int bit = 4; bit >= 1; bit >>= 1) {
            const std::string skip = a.newLabel("q");
            a.blt(S6, S5, skip);
            a.ori(A2, A2, bit);
            a.sub(S6, S6, S5);
            a.add(A1, A1, S5);
            a.label(skip);
            a.shri(S5, S5, 1);
        }
    } else {
        for (int bit = 4; bit >= 1; bit >>= 1) {
            const std::string skip = a.newLabel("r");
            a.andi(T4, S6, bit);
            a.beqz(T4, skip);
            a.add(A1, A1, S5);
            a.label(skip);
            a.shri(S5, S5, 1);
        }
        a.mv(A2, S6);
    }

    // valpred +/- vpdiff with clamping.
    const std::string sub = a.newLabel("sub");
    const std::string upd = a.newLabel("upd");
    a.bnez(A0, sub);
    a.add(S3, S3, A1);
    a.j(upd);
    a.label(sub);
    a.sub(S3, S3, A1);
    a.label(upd);
    a.li(T5, 32767);
    const std::string noHi = a.newLabel("nh");
    a.blt(S3, T5, noHi);
    a.mv(S3, T5);
    a.label(noHi);
    a.li(T5, -32768);
    const std::string noLo = a.newLabel("nl");
    a.bge(S3, T5, noLo);
    a.mv(S3, T5);
    a.label(noLo);

    if (p.g721) {
        // Adaptive predictor smoothing (extra serial arithmetic).
        a.muli(T6, S3, 15);
        a.sari(T6, T6, 4);
        a.mv(S3, T6);
    }

    // index += idxAdj[code & 7], clamped to [0, maxIndex].
    a.andi(T6, A2, 7);
    a.li(T7, static_cast<int64_t>(idxTable));
    a.add(T6, T6, T7);
    a.lb(T6, T6, 0);                    // signed adjustment
    a.add(S4, S4, T6);
    const std::string idxLo = a.newLabel("il");
    a.bge(S4, Zero, idxLo);
    a.li(S4, 0);
    a.label(idxLo);
    const std::string idxHi = a.newLabel("ih");
    a.blt(S4, S8, idxHi);
    a.mv(S4, S8);
    a.label(idxHi);

    // Emit output: code nibble (encode) or sample low byte (decode).
    if (p.decode)
        a.sb(S3, S1, 0);
    else
        a.sb(A2, S1, 0);
    a.addi(S1, S1, 1);
    a.addi(S0, S0, 2);
    a.addi(S2, S2, 1);
    a.blt(S2, S7, "sample");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
interpDispatch(const InterpParams &p)
{
    Assembler a("interp");

    // Bytecode stream: uniform over numOps, optionally skewed so a hot
    // fraction goes to opcode 0 (the branch-predictability knob).
    HostRng rng(p.seed);
    std::vector<uint8_t> code(p.codeLen);
    for (auto &b : code) {
        if (p.hotOpFraction > 0.0 && rng.unit() < p.hotOpFraction)
            b = 0;
        else
            b = static_cast<uint8_t>(rng.bounded(p.numOps));
    }
    const uint64_t bytecode = a.dataU8(code);
    const uint64_t vmStack = a.reserve(1024);

    // S0 bytecode, S1 vm pc, S2 opcode, S3 acc, S4 operand stack ptr,
    // S5 codeLen, S6 scratch, S9 iters.
    a.li(S9, p.iters);
    a.li(S5, static_cast<int64_t>(p.codeLen));

    a.label("iter");
    a.li(S0, static_cast<int64_t>(bytecode));
    a.li(S4, static_cast<int64_t>(vmStack + 512));
    a.li(S3, 0);
    a.li(S1, 0);

    a.label("fetch");
    a.add(T0, S0, S1);
    a.lbu(S2, T0, 0);                   // fetch opcode

    // Binary compare-tree dispatch (how a compiler lowers a dense
    // switch): log2(numOps) data-dependent branches per dispatch.
    std::vector<std::string> handlerLabels(p.numOps);
    for (unsigned i = 0; i < p.numOps; ++i)
        handlerLabels[i] = a.newLabel("op");

    const std::function<void(unsigned, unsigned)> tree =
        [&](unsigned lo, unsigned hi) {
            if (lo == hi) {
                a.j(handlerLabels[lo]);
                return;
            }
            const unsigned mid = (lo + hi) / 2;
            const std::string right = a.newLabel("gt");
            a.li(T1, mid);
            a.blt(T1, S2, right);
            tree(lo, mid);
            a.label(right);
            tree(mid + 1, hi);
        };
    tree(0, p.numOps - 1);

    // Handlers: distinct ALU/memory bodies so the instruction stream
    // working set grows with numOps, ending in a shared back edge.
    for (unsigned i = 0; i < p.numOps; ++i) {
        a.label(handlerLabels[i]);
        for (unsigned k = 0; k < p.handlerBody; ++k) {
            switch ((i + k) % 6) {
              case 0: a.addi(S3, S3, static_cast<int64_t>(i) + 1); break;
              case 1: a.xori(S3, S3, 0x5a5a + i); break;
              case 2: a.shli(S6, S3, (i % 7) + 1); a.add(S3, S3, S6);
                break;
              case 3: a.muli(S3, S3, 3); break;
              case 4: a.sd(S3, S4, -8 * int64_t((i % 8) + 1)); break;
              default: a.ld(S6, S4, -8 * int64_t((i % 8) + 1));
                a.xor_(S3, S3, S6); break;
            }
        }
        a.j("next");
    }

    a.label("next");
    a.addi(S1, S1, 1);
    a.blt(S1, S5, "fetch");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
texMap(const TexMapParams &p)
{
    Assembler a("texMap");

    const uint64_t tex = a.dataU8(randomBytes(p.texBytes, 0, p.seed));
    const uint64_t fb = a.reserveLazy(p.pixels * 4 + 16);
    const uint64_t texMask = p.texBytes - 4;

    // Per pixel: interpolate (u, v) in FP, convert, fetch the texel
    // (semi-random within the texture), integer-blend, store to the
    // sequential framebuffer — the mixed FP/int/table profile of a
    // software rasterizer.
    // S0 fb ptr, S1 tex, S2 pixel, S3 pixels, S4 texel, S5 prev color,
    // S9 iters; f0 u, f1 v, f2 du, f3 dv, f4 dv2.
    a.li(S9, p.iters);
    a.li(S3, static_cast<int64_t>(p.pixels));
    a.li(S1, static_cast<int64_t>(tex));
    fimm(a, 2, 37.25);                  // du
    fimm(a, 3, 11.5);                   // dv
    fimm(a, 4, 0.125);                  // dv drift

    a.label("iter");
    a.li(S0, static_cast<int64_t>(fb));
    a.li(S2, 0);
    a.li(S5, 0);
    fimm(a, 0, 0.0);
    fimm(a, 1, 0.0);

    a.label("pixel");
    a.fadd(0, 0, 2);                    // u += du
    a.fadd(1, 1, 3);                    // v += dv
    a.fadd(3, 3, 4);                    // perspective drift
    a.ftoi(T0, 0);
    a.ftoi(T1, 1);
    a.muli(T1, T1, 64);
    a.add(T0, T0, T1);
    a.li(T2, static_cast<int64_t>(texMask));
    a.and_(T0, T0, T2);
    a.add(T0, S1, T0);
    a.lwu(S4, T0, 0);                   // texel fetch

    // Integer alpha blend with the previous pixel.
    a.muli(T3, S4, 192);
    a.muli(T4, S5, 64);
    a.add(T3, T3, T4);
    a.shri(T3, T3, 8);
    a.mv(S5, T3);
    a.sw(T3, S0, 0);
    a.addi(S0, S0, 4);

    a.addi(S2, S2, 1);
    a.blt(S2, S3, "pixel");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
motionComp(const MotionParams &p)
{
    Assembler a(p.encode ? "motionEst" : "motionComp");

    const size_t frameBytes = p.frameW * p.frameH;
    const uint64_t cur = a.dataU8(randomBytes(frameBytes, 0, p.seed));
    const uint64_t ref = a.dataU8(randomBytes(frameBytes, 0,
                                              p.seed * 3 + 1));
    const uint64_t out = a.reserveLazy(frameBytes + 16);

    const size_t blocksX = p.frameW / 16 - 1;
    const size_t blocksY = p.frameH / 16 - 1;
    const unsigned cand = 2 * p.searchRange + 1;

    // S0 cur block base, S1 ref block base, S2 bx, S3 by, S4 SAD,
    // S5 best SAD, S6 candidate, S7 row, S8 col, S9 iters;
    // A0 cur row ptr, A1 ref row ptr, A2..A5 temps.
    a.li(S9, p.iters);

    a.label("iter");
    a.li(S3, 0);

    a.label("by");
    a.li(S2, 0);

    a.label("bx");
    // Block top-left in the current frame.
    a.li(T0, static_cast<int64_t>(p.frameW));
    a.shli(T1, S3, 4);
    a.mul(T1, T1, T0);
    a.shli(T2, S2, 4);
    a.add(T1, T1, T2);
    a.li(S0, static_cast<int64_t>(cur));
    a.add(S0, S0, T1);
    a.li(S1, static_cast<int64_t>(ref));
    a.add(S1, S1, T1);

    if (p.encode) {
        a.li(S5, 1 << 30);              // best SAD
        a.li(S6, 0);                    // candidate index

        a.label("cand");
        // Candidate offset: (cand % n) - range pixels horizontally.
        a.li(T3, cand);
        a.rem(T4, S6, T3);
        a.addi(T4, T4, -static_cast<int64_t>(p.searchRange));
        a.add(A1, S1, T4);              // ref base shifted

        a.li(S4, 0);                    // SAD
        a.li(S7, 0);                    // row
        a.label("sadrow");
        a.li(T5, static_cast<int64_t>(p.frameW));
        a.mul(T6, S7, T5);
        a.add(A0, S0, T6);
        a.add(A2, A1, T6);
        a.li(S8, 0);                    // col
        a.label("sadcol");
        a.add(A3, A0, S8);
        a.lbu(A4, A3, 0);
        a.add(A3, A2, S8);
        a.lbu(A5, A3, 0);
        a.sub(A4, A4, A5);
        a.sari(A5, A4, 63);             // branchless abs
        a.xor_(A4, A4, A5);
        a.sub(A4, A4, A5);
        a.add(S4, S4, A4);
        a.addi(S8, S8, 1);
        a.slti(T7, S8, 16);
        a.bnez(T7, "sadcol");
        a.addi(S7, S7, 1);
        a.slti(T7, S7, 16);
        a.bnez(T7, "sadrow");

        const std::string notBest = a.newLabel("nb");
        a.bge(S4, S5, notBest);         // data-dependent: new minimum?
        a.mv(S5, S4);
        a.label(notBest);

        a.addi(S6, S6, 1);
        a.slti(T7, S6, cand);
        a.bnez(T7, "cand");
    } else {
        // Compensation: average the reference block with the current
        // block into the output frame (copy-dominated).
        a.li(T3, static_cast<int64_t>(out));
        a.add(A1, T3, T1);
        a.li(S7, 0);
        a.label("mcrow");
        a.li(T5, static_cast<int64_t>(p.frameW));
        a.mul(T6, S7, T5);
        a.add(A0, S0, T6);
        a.add(A2, S1, T6);
        a.add(A3, A1, T6);
        a.li(S8, 0);
        a.label("mccol");
        a.add(A4, A0, S8);
        a.lbu(T7, A4, 0);
        a.add(A4, A2, S8);
        a.lbu(T8, A4, 0);
        a.add(T7, T7, T8);
        a.shri(T7, T7, 1);
        a.add(A4, A3, S8);
        a.sb(T7, A4, 0);
        a.addi(S8, S8, 1);
        a.slti(T8, S8, 16);
        a.bnez(T8, "mccol");
        a.addi(S7, S7, 1);
        a.slti(T8, S7, 16);
        a.bnez(T8, "mcrow");
    }

    a.addi(S2, S2, 1);
    a.li(T9, static_cast<int64_t>(blocksX));
    a.blt(S2, T9, "bx");
    a.addi(S3, S3, 1);
    a.li(T9, static_cast<int64_t>(blocksY));
    a.blt(S3, T9, "by");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

} // namespace mica::workloads::kernels
