/**
 * @file
 * General-purpose kernel builders substituting SPEC CPU2000 programs:
 * pointer chasing (mcf), streaming neural scans (art), grid stencils
 * (swim/mgrid/applu/...), ray tracing (eon), annealing placement
 * (twolf/vpr), object-database traversal (vortex), and block sorting
 * (bzip2). The remaining SPEC rows reuse families from other suites
 * (see registry.cc).
 */

#include "workloads/kernel_lib.hh"

#include <cstring>

#include "isa/assembler.hh"

namespace mica::workloads::kernels
{

using namespace isa;
using namespace isa::reg;

namespace
{

/** Load a double constant into FP register fr through a stack slot. */
void
fimm(Assembler &a, uint8_t fr, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    a.li(T9, static_cast<int64_t>(bits));
    a.sd(T9, Sp, -8);
    a.fld(fr, Sp, -8);
}

} // namespace

isa::Program
pointerChase(const PointerChaseParams &p)
{
    Assembler a("pointerChase");

    // 64-byte nodes laid out as a single random cycle: the next-pointer
    // load chain is fully serial and touches a new cache line (often a
    // new page) per step — the mcf memory profile.
    const std::vector<uint64_t> cycle = randomCycle(p.nodes, p.seed);
    std::vector<uint64_t> nodes(p.nodes * 8, 0);
    const uint64_t nodesBase = Program::kDataBase;
    HostRng rng(p.seed * 3 + 1);
    for (size_t i = 0; i < p.nodes; ++i) {
        nodes[i * 8] = nodesBase + cycle[i] * 64;
        nodes[i * 8 + 1] = rng.bounded(1000);   // cost
        nodes[i * 8 + 2] = rng.bounded(100);    // capacity
    }
    const uint64_t arr = a.dataU64(nodes);
    (void)arr;

    // S0 node ptr, S1 step, S2 steps, S3 cost acc, S4 flow acc,
    // S9 iters.
    a.li(S9, p.iters);
    a.li(S2, static_cast<int64_t>(p.steps));

    a.label("iter");
    a.li(S0, static_cast<int64_t>(nodesBase));
    a.li(S1, 0);
    a.li(S3, 0);
    a.li(S4, 0);

    a.label("step");
    a.ld(T0, S0, 8);                    // cost
    a.ld(T1, S0, 16);                   // capacity
    a.add(S3, S3, T0);
    // Data-dependent reduced-cost test (arc pricing).
    const std::string noFlow = a.newLabel("nf");
    a.slti(T2, T1, 50);
    a.beqz(T2, noFlow);
    a.add(S4, S4, T1);
    a.addi(T1, T1, 7);
    a.sd(T1, S0, 16);                   // update the arc
    a.label(noFlow);
    a.ld(S0, S0, 0);                    // chase next (serial)
    a.addi(S1, S1, 1);
    a.blt(S1, S2, "step");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
neuralScan(const NeuralScanParams &p)
{
    Assembler a("neuralScan");

    const uint64_t input = a.dataF64(randomDoubles(p.inputs, 0.0, 1.0,
                                                   p.seed));
    const uint64_t weights = a.dataF64(
        randomDoubles(p.inputs * p.neurons, 0.0, 1.0, p.seed * 3 + 1));
    const uint64_t acts = a.reserve(p.neurons * 8);

    // F1/F2 layer scan: every neuron streams the whole input and its
    // own weight row (two long unit-stride streams, minimal reuse),
    // then a vigilance test decides a weight-update pass.
    // S0 input ptr, S1 weight ptr, S2 neuron, S3 i, S4 inputs,
    // S5 neurons, S6 acts, S9 iters; f0 acc, f1 x, f2 w, f3 vigilance.
    a.li(S9, p.iters);
    a.li(S4, static_cast<int64_t>(p.inputs));
    a.li(S5, static_cast<int64_t>(p.neurons));
    a.li(S6, static_cast<int64_t>(acts));
    fimm(a, 3, 0.253 * static_cast<double>(p.inputs));

    a.label("iter");
    a.li(S2, 0);

    a.label("neuron");
    a.li(S0, static_cast<int64_t>(input));
    a.li(S1, static_cast<int64_t>(weights));
    a.mul(T0, S2, S4);
    a.shli(T0, T0, 3);
    a.add(S1, S1, T0);

    fimm(a, 0, 0.0);
    a.li(S3, 0);
    a.label("dot");
    a.fld(1, S0, 0);
    a.fld(2, S1, 0);
    a.fmul(1, 1, 2);
    a.fadd(0, 0, 1);
    a.addi(S0, S0, 8);
    a.addi(S1, S1, 8);
    a.addi(S3, S3, 1);
    a.blt(S3, S4, "dot");

    a.shli(T1, S2, 3);
    a.add(T1, S6, T1);
    a.fsd(0, T1, 0);

    // Vigilance test: winner updates its weights (second stream pass).
    a.fclt(T2, 3, 0);
    const std::string noUpdate = a.newLabel("nu");
    a.beqz(T2, noUpdate);
    a.li(S0, static_cast<int64_t>(input));
    a.li(S1, static_cast<int64_t>(weights));
    a.mul(T0, S2, S4);
    a.shli(T0, T0, 3);
    a.add(S1, S1, T0);
    fimm(a, 2, 0.9);
    a.li(S3, 0);
    const std::string upd = a.newLabel("up");
    a.label(upd);
    a.fld(1, S0, 0);
    a.fld(0, S1, 0);
    a.fsub(1, 1, 0);
    a.fmul(1, 1, 2);
    a.fadd(0, 0, 1);
    a.fsd(0, S1, 0);
    a.addi(S0, S0, 8);
    a.addi(S1, S1, 8);
    a.addi(S3, S3, 1);
    a.blt(S3, S4, upd);
    a.label(noUpdate);

    a.addi(S2, S2, 1);
    a.blt(S2, S5, "neuron");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
stencilSweep(const StencilParams &p)
{
    Assembler a(p.sparse ? "sparseStencil" : "stencil");

    const size_t cells = p.nx * p.ny;
    const uint64_t grid = a.dataF64(randomDoubles(cells, 0.0, 1.0,
                                                  p.seed));
    const uint64_t next = a.reserve(cells * 8);

    uint64_t idxArr = 0;
    if (p.sparse) {
        // Unstructured mesh: neighbor indices are randomized, turning
        // the regular stride pattern into indexed gather FP.
        HostRng rng(p.seed * 5 + 2);
        std::vector<uint64_t> idx(cells * 4);
        for (auto &v : idx)
            v = rng.bounded(cells);
        idxArr = a.dataU64(idx);
    }

    // S0 grid, S1 next, S2 x, S3 y, S4 nx, S5 ny, S6 pass, S7 idx base,
    // S8 cell index, S9 iters; f0 acc, f1 neighbor, f2 weight.
    a.li(S9, p.iters);
    a.li(S4, static_cast<int64_t>(p.nx));
    a.li(S5, static_cast<int64_t>(p.ny));
    fimm(a, 2, 1.0 / static_cast<double>(p.points));

    a.label("iter");
    a.li(S6, 0);

    a.label("pass");
    a.li(S3, 1);

    a.label("yloop");
    a.li(S2, 1);

    a.label("xloop");
    a.mul(S8, S3, S4);
    a.add(S8, S8, S2);                  // cell = y * nx + x
    a.shli(T0, S8, 3);
    a.li(T1, static_cast<int64_t>(grid));
    a.add(T1, T1, T0);                  // &grid[cell]

    a.fld(0, T1, 0);                    // center
    if (p.sparse) {
        a.shli(T2, S8, 5);              // 4 neighbors * 8 bytes
        a.li(S7, static_cast<int64_t>(idxArr));
        a.add(S7, S7, T2);
        for (int nb = 0; nb < 4; ++nb) {
            a.ld(T3, S7, nb * 8);       // neighbor cell index
            a.shli(T3, T3, 3);
            a.li(T4, static_cast<int64_t>(grid));
            a.add(T4, T4, T3);
            a.fld(1, T4, 0);            // gathered neighbor
            a.fadd(0, 0, 1);
        }
    } else {
        const int64_t nxB = static_cast<int64_t>(p.nx) * 8;
        a.fld(1, T1, 8);
        a.fadd(0, 0, 1);
        a.fld(1, T1, -8);
        a.fadd(0, 0, 1);
        a.fld(1, T1, nxB);
        a.fadd(0, 0, 1);
        a.fld(1, T1, -nxB);
        a.fadd(0, 0, 1);
        if (p.points >= 9) {
            a.fld(1, T1, nxB + 8);
            a.fadd(0, 0, 1);
            a.fld(1, T1, nxB - 8);
            a.fadd(0, 0, 1);
            a.fld(1, T1, -nxB + 8);
            a.fadd(0, 0, 1);
            a.fld(1, T1, -nxB - 8);
            a.fadd(0, 0, 1);
        }
    }
    a.fmul(0, 0, 2);                    // average
    a.li(T5, static_cast<int64_t>(next));
    a.add(T5, T5, T0);
    a.fsd(0, T5, 0);

    a.addi(S2, S2, 1);
    a.addi(T6, S4, -1);
    a.blt(S2, T6, "xloop");

    a.addi(S3, S3, 1);
    a.addi(T6, S5, -1);
    a.blt(S3, T6, "yloop");

    // Copy next -> grid for the following pass (streaming FP copy).
    a.li(T0, static_cast<int64_t>(grid));
    a.li(T1, static_cast<int64_t>(next));
    a.li(T2, static_cast<int64_t>(cells));
    a.label("commit");
    a.fld(0, T1, 0);
    a.fsd(0, T0, 0);
    a.addi(T0, T0, 8);
    a.addi(T1, T1, 8);
    a.addi(T2, T2, -1);
    a.bnez(T2, "commit");

    a.addi(S6, S6, 1);
    a.li(T3, p.passes);
    a.blt(S6, T3, "pass");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
rayTrace(const RayTraceParams &p)
{
    Assembler a("rayTrace");

    // Spheres: {cx, cy, cz, r2} doubles; rays: {ox..oz, dx..dz}.
    const uint64_t spheres = a.dataF64(randomDoubles(p.spheres * 4,
                                                     -8.0, 8.0, p.seed));
    const uint64_t rays = a.dataF64(randomDoubles(p.rays * 6,
                                                  -1.0, 1.0,
                                                  p.seed * 3 + 1));
    const uint64_t hits = a.reserve(p.rays * 8);

    // S0 ray ptr, S1 sphere ptr, S2 ray idx, S3 sphere idx, S4 rays,
    // S5 spheres, S6 hit count, S9 iters;
    // f0..f2 origin-center, f3..f5 dir, f6 b, f7 c, f8 disc.
    a.li(S9, p.iters);
    a.li(S4, static_cast<int64_t>(p.rays));
    a.li(S5, static_cast<int64_t>(p.spheres));

    a.label("iter");
    a.li(S0, static_cast<int64_t>(rays));
    a.li(S2, 0);
    a.li(S6, 0);

    a.label("ray");
    a.fld(3, S0, 24);                   // dx
    a.fld(4, S0, 32);                   // dy
    a.fld(5, S0, 40);                   // dz

    a.li(S1, static_cast<int64_t>(spheres));
    a.li(S3, 0);

    a.label("sphere");
    a.fld(0, S0, 0);
    a.fld(6, S1, 0);
    a.fsub(0, 0, 6);                    // ox - cx
    a.fld(1, S0, 8);
    a.fld(6, S1, 8);
    a.fsub(1, 1, 6);
    a.fld(2, S0, 16);
    a.fld(6, S1, 16);
    a.fsub(2, 2, 6);

    // b = oc . d ; c = oc . oc - r2 ; disc = b*b - c
    a.fmul(6, 0, 3);
    a.fmul(7, 1, 4);
    a.fadd(6, 6, 7);
    a.fmul(7, 2, 5);
    a.fadd(6, 6, 7);                    // b
    a.fmul(7, 0, 0);
    a.fmul(8, 1, 1);
    a.fadd(7, 7, 8);
    a.fmul(8, 2, 2);
    a.fadd(7, 7, 8);
    a.fld(8, S1, 24);
    a.fsub(7, 7, 8);                    // c
    a.fmul(8, 6, 6);
    a.fsub(8, 8, 7);                    // discriminant

    // Hit test: data-dependent branch, then a sqrt on the hit path.
    fimm(a, 9, 0.0);
    a.fclt(T0, 9, 8);
    const std::string miss = a.newLabel("miss");
    a.beqz(T0, miss);
    a.fsqrt(8, 8);
    a.fsub(6, 6, 8);                    // near root
    a.addi(S6, S6, 1);
    a.shli(T1, S2, 3);
    a.li(T2, static_cast<int64_t>(hits));
    a.add(T1, T1, T2);
    a.fsd(6, T1, 0);
    a.label(miss);

    a.addi(S1, S1, 32);
    a.addi(S3, S3, 1);
    a.blt(S3, S5, "sphere");

    a.addi(S0, S0, 48);
    a.addi(S2, S2, 1);
    a.blt(S2, S4, "ray");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
annealPlace(const AnnealParams &p)
{
    Assembler a("annealPlace");

    // Cell positions (16-byte {x, y} pairs) plus a net table mapping
    // each cell to a partner whose distance defines the cost.
    HostRng rng(p.seed);
    std::vector<uint64_t> cells(p.cells * 2);
    for (auto &c : cells)
        c = rng.bounded(1024);
    const uint64_t cellArr = a.dataU64(cells);
    std::vector<uint64_t> nets(p.cells);
    for (auto &n : nets)
        n = rng.bounded(p.cells);
    const uint64_t netArr = a.dataU64(nets);

    // S0 cells, S1 nets, S2 rng state, S3 move, S4 cell a, S5 cell b,
    // S6 cost acc, S7 accepted acc, S8 mask, S9 iters; T0..T8 temps.
    a.li(S9, p.iters);
    a.li(S0, static_cast<int64_t>(cellArr));
    a.li(S1, static_cast<int64_t>(netArr));
    a.li(S8, static_cast<int64_t>(p.cells - 1));

    a.label("iter");
    a.li(S2, static_cast<int64_t>(p.seed | 1));
    a.li(S3, 0);
    a.li(S6, 0);
    a.li(S7, 0);

    a.label("move");
    // In-ISA xorshift for the move generator.
    a.shli(T0, S2, 13);
    a.xor_(S2, S2, T0);
    a.shri(T0, S2, 7);
    a.xor_(S2, S2, T0);
    a.shli(T0, S2, 17);
    a.xor_(S2, S2, T0);

    a.and_(S4, S2, S8);                 // cell a
    a.shri(T1, S2, 20);
    a.and_(S5, T1, S8);                 // cell b

    // delta = dist(a, net[a]) - dist(b, net[b]) using |x| + |y|.
    const auto dist = [&](uint8_t cellReg, uint8_t outReg) {
        a.shli(T2, cellReg, 3);
        a.add(T2, S1, T2);
        a.ld(T3, T2, 0);                // partner index
        a.shli(T4, cellReg, 4);
        a.add(T4, S0, T4);
        a.shli(T5, T3, 4);
        a.add(T5, S0, T5);
        a.ld(T6, T4, 0);
        a.ld(T7, T5, 0);
        a.sub(T6, T6, T7);
        a.sari(T7, T6, 63);
        a.xor_(T6, T6, T7);
        a.sub(T6, T6, T7);              // |dx|
        a.ld(T8, T4, 8);
        a.ld(T7, T5, 8);
        a.sub(T8, T8, T7);
        a.sari(T7, T8, 63);
        a.xor_(T8, T8, T7);
        a.sub(T8, T8, T7);              // |dy|
        a.add(outReg, T6, T8);
    };
    dist(S4, A0);
    dist(S5, A1);
    a.sub(A2, A0, A1);                  // delta cost

    // Accept if the move helps, or "thermally" if rng bits say so.
    const std::string reject = a.newLabel("rej");
    const std::string accept = a.newLabel("acc");
    a.blt(A2, Zero, accept);
    a.andi(T0, S2, 0x1f);
    a.bnez(T0, reject);
    a.label(accept);
    // Swap the two cell positions (x words only, like a row exchange).
    a.shli(T1, S4, 4);
    a.add(T1, S0, T1);
    a.shli(T2, S5, 4);
    a.add(T2, S0, T2);
    a.ld(T3, T1, 0);
    a.ld(T4, T2, 0);
    a.sd(T4, T1, 0);
    a.sd(T3, T2, 0);
    a.addi(S7, S7, 1);
    a.label(reject);
    a.add(S6, S6, A2);

    a.addi(S3, S3, 1);
    a.li(T5, static_cast<int64_t>(p.moves));
    a.blt(S3, T5, "move");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
objDb(const ObjDbParams &p)
{
    Assembler a("objDb");

    // Objects are 64-byte records; an index table holds shuffled
    // object addresses so traversal order is data-driven. Per-object
    // work runs through call/return pairs (subroutine-per-operation),
    // growing the instruction working set and the call-stack traffic.
    HostRng rng(p.seed);
    const uint64_t objBase = Program::kDataBase;
    std::vector<uint64_t> objs(p.objects * 8);
    for (size_t i = 0; i < p.objects; ++i) {
        objs[i * 8 + 0] = rng.bounded(1u << 20);    // key
        objs[i * 8 + 1] = rng.bounded(256);         // type
        objs[i * 8 + 2] = 0;                        // refcount
        objs[i * 8 + 3] = rng.bounded(1u << 16);    // payload
    }
    const uint64_t objArr = a.dataU64(objs);
    (void)objArr;
    std::vector<uint64_t> index(p.traversals);
    for (auto &v : index)
        v = objBase + rng.bounded(p.objects) * 64;
    const uint64_t idxArr = a.dataU64(index);

    // S0 index ptr, S1 i, S2 obj ptr, S3 acc, S4 traversals, S9 iters.
    a.li(S9, p.iters);
    a.li(S4, static_cast<int64_t>(p.traversals));

    a.j("main");

    // --- op_validate: key hash check ---
    a.label("op_validate");
    a.ld(T0, S2, 0);
    a.muli(T1, T0, 31);
    a.shri(T2, T1, 7);
    a.xor_(T1, T1, T2);
    a.add(S3, S3, T1);
    a.ret();

    // --- op_touch: bump the reference count ---
    a.label("op_touch");
    a.ld(T0, S2, 16);
    a.addi(T0, T0, 1);
    a.sd(T0, S2, 16);
    a.ret();

    // --- op_payload: conditional payload transform ---
    a.label("op_payload");
    a.ld(T0, S2, 24);
    a.andi(T1, T0, 1);
    const std::string odd = a.newLabel("odd");
    const std::string done = a.newLabel("pd");
    a.bnez(T1, odd);
    a.shri(T0, T0, 1);
    a.j(done);
    a.label(odd);
    a.muli(T0, T0, 3);
    a.addi(T0, T0, 1);
    a.label(done);
    a.sd(T0, S2, 24);
    a.ret();

    // --- op_classify: type-dependent accumulation ---
    a.label("op_classify");
    a.ld(T0, S2, 8);
    a.slti(T1, T0, 128);
    const std::string low = a.newLabel("low");
    const std::string cdone = a.newLabel("cd");
    a.bnez(T1, low);
    a.shli(T2, T0, 2);
    a.add(S3, S3, T2);
    a.j(cdone);
    a.label(low);
    a.sub(S3, S3, T0);
    a.label(cdone);
    a.ret();

    a.label("main");
    a.label("iter");
    a.li(S0, static_cast<int64_t>(idxArr));
    a.li(S1, 0);
    a.li(S3, 0);

    a.label("visit");
    a.ld(S2, S0, 0);                    // object address (random-ish)
    a.call("op_validate");
    a.call("op_touch");
    if (p.opsPerObject > 2)
        a.call("op_payload");
    a.call("op_classify");

    a.addi(S0, S0, 8);
    a.addi(S1, S1, 1);
    a.blt(S1, S4, "visit");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
bwtSort(const BwtSortParams &p)
{
    Assembler a("bwtSort");

    const uint64_t block = a.dataU8(randomBytes(p.blockBytes, p.alphabet,
                                                p.seed));
    // Suffix index array, initialized 0..n-1 by the kernel itself.
    const uint64_t idx = a.reserve(p.blockBytes * 8);
    const uint64_t stack = a.reserve(p.blockBytes * 16 + 64);

    // Quicksort of suffix indices ordered by (first byte, tie-break on
    // following bytes): byte-compare loops with data-dependent length,
    // the bzip2 front-end profile.
    // S0 idx, S1 stack ptr, S2 lo, S3 hi, S4 pivot suffix, S5 i,
    // S6 j, S7 block base, S8 temp, S9 iters.
    a.li(S9, p.iters);
    a.li(S7, static_cast<int64_t>(block));

    a.label("iter");
    a.li(S0, static_cast<int64_t>(idx));
    // idx[i] = i
    a.li(T0, 0);
    a.li(T1, static_cast<int64_t>(p.blockBytes));
    a.label("init");
    a.shli(T2, T0, 3);
    a.add(T2, S0, T2);
    a.sd(T0, T2, 0);
    a.addi(T0, T0, 1);
    a.blt(T0, T1, "init");

    a.li(S1, static_cast<int64_t>(stack));
    a.sd(Zero, S1, 0);
    a.li(T0, static_cast<int64_t>(p.blockBytes - 1));
    a.sd(T0, S1, 8);
    a.addi(S1, S1, 16);

    a.label("pop");
    a.li(T1, static_cast<int64_t>(stack));
    a.bge(T1, S1, "sorted");
    a.addi(S1, S1, -16);
    a.ld(S2, S1, 0);
    a.ld(S3, S1, 8);
    a.bge(S2, S3, "pop");

    // Partition by suffix comparison against the pivot (idx[hi]).
    a.shli(T2, S3, 3);
    a.add(T2, S0, T2);
    a.ld(S4, T2, 0);                    // pivot suffix start
    a.addi(S5, S2, -1);
    a.mv(S6, S2);

    a.label("part");
    a.bge(S6, S3, "part_done");
    a.shli(T3, S6, 3);
    a.add(T3, S0, T3);
    a.ld(S8, T3, 0);                    // suffix j

    // Compare suffix S8 vs pivot S4: up to 8 tie-break bytes.
    a.li(A0, 0);                        // depth
    a.li(A3, static_cast<int64_t>(p.blockBytes));
    const std::string cmpLe = a.newLabel("le");
    const std::string cmpGt = a.newLabel("gt");
    const std::string cmpLoop = a.newLabel("cm");
    a.label(cmpLoop);
    a.add(A1, S8, A0);
    a.bge(A1, A3, cmpLe);               // ran off the block: shorter
    a.add(A2, S4, A0);
    a.bge(A2, A3, cmpGt);
    a.add(A1, S7, A1);
    a.lbu(A1, A1, 0);
    a.add(A2, S7, A2);
    a.lbu(A2, A2, 0);
    a.blt(A1, A2, cmpLe);               // data byte decides
    a.blt(A2, A1, cmpGt);
    a.addi(A0, A0, 1);
    a.slti(A1, A0, 8);
    a.bnez(A1, cmpLoop);
    a.j(cmpLe);                         // equal prefix counts as <=

    a.label(cmpLe);
    a.addi(S5, S5, 1);
    a.shli(T4, S5, 3);
    a.add(T4, S0, T4);
    a.ld(A4, T4, 0);
    a.sd(S8, T4, 0);
    a.sd(A4, T3, 0);
    a.label(cmpGt);
    a.addi(S6, S6, 1);
    a.j("part");
    a.label("part_done");

    // Move the pivot into place and recurse on both halves.
    a.addi(S5, S5, 1);
    a.shli(T4, S5, 3);
    a.add(T4, S0, T4);
    a.ld(A4, T4, 0);
    a.sd(S4, T4, 0);
    a.shli(T3, S3, 3);
    a.add(T3, S0, T3);
    a.sd(A4, T3, 0);

    a.addi(T5, S5, -1);
    a.sd(S2, S1, 0);
    a.sd(T5, S1, 8);
    a.addi(S1, S1, 16);
    a.addi(T5, S5, 1);
    a.sd(T5, S1, 0);
    a.sd(S3, S1, 8);
    a.addi(S1, S1, 16);
    a.j("pop");

    a.label("sorted");
    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

} // namespace mica::workloads::kernels
