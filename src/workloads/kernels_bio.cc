/**
 * @file
 * Bioinformatics kernel builders: dynamic-programming alignment, k-mer
 * index scanning, profile-HMM Viterbi, and phylogenetic tree evaluation.
 *
 * These substitute the BioInfoMark programs (blast, ce, clustalw, fasta,
 * glimmer, hmmer, phylip, predator). Their shared traits per the paper:
 * integer/byte-oriented data-dependent control flow, and (for blast)
 * working sets far larger than anything in SPEC CPU2000.
 */

#include "workloads/kernel_lib.hh"

#include <cstring>

#include "isa/assembler.hh"

namespace mica::workloads::kernels
{

using namespace isa;
using namespace isa::reg;

namespace
{

/** Load a double constant into FP register fr through a stack slot. */
void
fimm(Assembler &a, uint8_t fr, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    a.li(T9, static_cast<int64_t>(bits));
    a.sd(T9, Sp, -8);
    a.fld(fr, Sp, -8);
}

} // namespace

isa::Program
dpMatrix(const DpMatrixParams &p)
{
    Assembler a("dpMatrix");

    const uint64_t seqA = a.dataU8(randomBytes(p.queryLen, p.alphabet,
                                               p.seed));
    const uint64_t seqB = a.dataU8(randomBytes(p.dbLen, p.alphabet,
                                               p.seed * 7 + 1));
    const uint64_t prevRow = a.reserve((p.dbLen + 1) * 8);
    const uint64_t curRow = a.reserve((p.dbLen + 1) * 8);

    // Register map:
    //   S0 seqA, S1 seqB, S2 prev row, S3 cur row, S4 i, S5 a[i]
    //   S6 match score, S7 mismatch, S8 gap, S9 iteration counter
    //   A0 queryLen, A1 dbLen, T0 j, T1..T6 temps.
    a.li(S6, p.matchScore);
    a.li(S7, p.mismatchPenalty);
    a.li(S8, p.gapPenalty);
    a.li(A0, static_cast<int64_t>(p.queryLen));
    a.li(A1, static_cast<int64_t>(p.dbLen));
    a.li(S9, p.iters);

    a.label("iter");
    a.li(S2, static_cast<int64_t>(prevRow));
    a.li(S3, static_cast<int64_t>(curRow));

    // Zero the previous row (local alignment boundary condition).
    a.li(T0, 0);
    a.label("zero");
    a.shli(T1, T0, 3);
    a.add(T1, S2, T1);
    a.sd(Zero, T1, 0);
    a.addi(T0, T0, 1);
    a.bge(A1, T0, "zero");

    a.li(S4, 0);                        // i = 0
    a.label("row");
    a.li(S0, static_cast<int64_t>(seqA));
    a.add(T1, S0, S4);
    a.lbu(S5, T1, 0);                   // a[i]
    a.sd(Zero, S3, 0);                  // cur[0] = 0
    a.li(S1, static_cast<int64_t>(seqB));
    a.li(T0, 0);                        // j = 0

    a.label("cell");
    a.add(T1, S1, T0);
    a.lbu(T1, T1, 0);                   // b[j]
    a.shli(T2, T0, 3);
    a.add(T3, S2, T2);
    a.ld(T4, T3, 0);                    // diag = prev[j]
    a.ld(T5, T3, 8);                    // up = prev[j+1]
    a.add(T3, S3, T2);
    a.ld(T6, T3, 0);                    // left = cur[j]

    // Data-dependent substitution score.
    const std::string mismatch = a.newLabel("mm");
    const std::string scored = a.newLabel("sc");
    a.bne(S5, T1, mismatch);
    a.add(T4, T4, S6);                  // diag + match
    a.j(scored);
    a.label(mismatch);
    a.add(T4, T4, S7);                  // diag + mismatch
    a.label(scored);

    a.add(T5, T5, S8);                  // up + gap
    a.add(T6, T6, S8);                  // left + gap
    const std::string skipUp = a.newLabel("su");
    a.bge(T4, T5, skipUp);
    a.mv(T4, T5);
    a.label(skipUp);
    const std::string skipLeft = a.newLabel("sl");
    a.bge(T4, T6, skipLeft);
    a.mv(T4, T6);
    a.label(skipLeft);
    const std::string clamped = a.newLabel("cl");
    a.bge(T4, Zero, clamped);
    a.li(T4, 0);                        // local alignment floor
    a.label(clamped);

    a.add(T3, S3, T2);
    a.sd(T4, T3, 8);                    // cur[j+1] = v

    a.addi(T0, T0, 1);
    a.blt(T0, A1, "cell");

    // Swap row buffers for the next query residue.
    a.mv(T1, S2);
    a.mv(S2, S3);
    a.mv(S3, T1);

    a.addi(S4, S4, 1);
    a.blt(S4, A0, "row");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
kmerScan(const KmerScanParams &p)
{
    Assembler a("kmerScan");

    const uint64_t db = a.dataU8(randomBytes(p.dbBytes, 0, p.seed));
    const uint64_t query = a.dataU8(randomBytes(p.queryBytes, 0,
                                                p.seed * 3 + 1));
    // The index dominates the data working set; it starts zeroed and is
    // bumped on every probe, so probes also generate far-apart stores.
    const uint64_t table = a.reserveLazy(p.tableBytes);
    const uint64_t tableMask = (p.tableBytes - 1) & ~7ull;
    const uint64_t extendMask = (1ull << p.extendThresholdBits) - 1;

    // Register map:
    //   S0 db, S1 table, S2 rolling hash, S3 pos, S4 best score
    //   S5 query, S6 extendMask, S7 dbBytes, S8 queryBytes, S9 iters
    //   T0..T7 temps.
    a.li(S9, p.iters);
    a.li(S7, static_cast<int64_t>(p.dbBytes));
    a.li(S8, static_cast<int64_t>(p.queryBytes));
    a.li(S6, static_cast<int64_t>(extendMask));

    a.label("iter");
    a.li(S0, static_cast<int64_t>(db));
    a.li(S1, static_cast<int64_t>(table));
    a.li(S5, static_cast<int64_t>(query));
    a.li(S2, static_cast<int64_t>(p.seed | 1));
    a.li(S3, 0);
    a.li(S4, 0);

    a.label("scan");
    a.add(T0, S0, S3);
    a.lbu(T0, T0, 0);                   // next database byte
    a.shli(T1, S2, 5);
    a.shri(T2, S2, 3);
    a.xor_(S2, T1, T2);
    a.xor_(S2, S2, T0);                 // roll the hash

    a.muli(T1, S2, 0x2545f4914f6cdd1dll);   // mix
    a.li(T2, static_cast<int64_t>(tableMask));
    a.and_(T1, T1, T2);
    a.add(T1, S1, T1);
    a.ld(T3, T1, 0);                    // index probe (random page)
    a.addi(T3, T3, 1);
    a.sd(T3, T1, 0);                    // bump the bucket

    // Rare, hash-gated seed extension: compare query to db from pos.
    const std::string noExtend = a.newLabel("ne");
    a.and_(T2, S2, S6);
    a.bnez(T2, noExtend);

    a.li(T4, 0);                        // k = 0
    a.sub(T5, S7, S3);                  // remaining db bytes
    const std::string extDone = a.newLabel("xd");
    const std::string extLoop = a.newLabel("xl");
    a.label(extLoop);
    a.bge(T4, S8, extDone);
    a.bge(T4, T5, extDone);
    a.add(T6, S5, T4);
    a.lbu(T6, T6, 0);                   // query[k]
    a.add(T7, S0, S3);
    a.add(T7, T7, T4);
    a.lbu(T7, T7, 0);                   // db[pos + k]
    a.bne(T6, T7, extDone);
    a.addi(T4, T4, 1);
    a.j(extLoop);
    a.label(extDone);
    const std::string noBest = a.newLabel("nb");
    a.bge(S4, T4, noBest);
    a.mv(S4, T4);                       // new best extension length
    a.label(noBest);
    a.label(noExtend);

    a.addi(S3, S3, 1);
    a.blt(S3, S7, "scan");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
hmmViterbi(const HmmViterbiParams &p)
{
    Assembler a("hmmViterbi");

    const size_t states = p.states;
    const uint64_t obs = a.dataU8(randomBytes(p.seqLen, p.alphabet,
                                              p.seed));
    const uint64_t emit = a.dataF64(randomDoubles(p.alphabet * states,
                                                  -4.0, 0.0,
                                                  p.seed * 5 + 1));
    const uint64_t prevM = a.reserve((states + 1) * 8);
    const uint64_t curM = a.reserve((states + 1) * 8);
    const uint64_t prevI = a.reserve((states + 1) * 8);
    const uint64_t counts = a.reserve(states * 8);

    // FP register map: f0 m-path, f1 i-path, f2/f3 temps,
    //   f4 tMM, f5 tIM, f6 tMI, f7 tII (log transition scores).
    // Int: S0 obs, S1 (unused), S2 prevM, S3 curM, S4 prevI, S5 t,
    //   S6 states, S7 seqLen, S8 emit row base, S9 iters, T0 j.
    a.li(S9, p.iters);
    a.li(S6, static_cast<int64_t>(states));
    a.li(S7, static_cast<int64_t>(p.seqLen));

    fimm(a, 4, -0.1);   // tMM
    fimm(a, 5, -1.5);   // tIM
    fimm(a, 6, -2.0);   // tMI
    fimm(a, 7, -0.4);   // tII

    a.label("iter");
    a.li(S0, static_cast<int64_t>(obs));
    a.li(S2, static_cast<int64_t>(prevM));
    a.li(S3, static_cast<int64_t>(curM));
    a.li(S4, static_cast<int64_t>(prevI));
    a.li(S5, 0);                        // t = 0

    a.label("obsloop");
    a.add(T1, S0, S5);
    a.lbu(T1, T1, 0);                   // observation symbol
    a.li(T2, static_cast<int64_t>(states * 8));
    a.mul(T1, T1, T2);
    a.li(S8, static_cast<int64_t>(emit));
    a.add(S8, S8, T1);                  // emission row for this symbol

    a.li(T0, 0);                        // j = 0
    a.label("state");
    a.shli(T2, T0, 3);

    a.add(T3, S2, T2);
    a.fld(0, T3, 0);                    // prevM[j]
    a.fadd(0, 0, 4);                    // + tMM
    a.add(T4, S4, T2);
    a.fld(2, T4, 0);                    // prevI[j]
    a.fadd(2, 2, 5);                    // + tIM
    a.fmax(0, 0, 2);                    // best entry into M

    a.add(T5, S8, T2);
    a.fld(3, T5, 0);                    // emit[sym][j]
    a.fadd(0, 0, 3);
    a.add(T6, S3, T2);
    a.fsd(0, T6, 8);                    // curM[j+1]

    a.fld(1, T3, 8);                    // prevM[j+1]
    a.fadd(1, 1, 6);                    // + tMI
    a.fld(2, T4, 8);                    // prevI[j+1]
    a.fadd(2, 2, 7);                    // + tII
    a.fmax(1, 1, 2);
    a.fsd(1, T4, 8);                    // prevI[j+1] updated in place

    a.addi(T0, T0, 1);
    a.blt(T0, S6, "state");

    // Swap the M bands.
    a.mv(T1, S2);
    a.mv(S2, S3);
    a.mv(S3, T1);

    a.addi(S5, S5, 1);
    a.blt(S5, S7, "obsloop");

    if (p.trainingPass) {
        // Count-update pass: accumulate per-state usage estimates.
        a.li(T0, 0);
        a.li(T3, static_cast<int64_t>(counts));
        const std::string train = a.newLabel("tr");
        a.label(train);
        a.shli(T2, T0, 3);
        a.add(T4, S2, T2);
        a.ld(T5, T4, 0);
        a.add(T6, T3, T2);
        a.ld(T7, T6, 0);
        a.add(T7, T7, T5);
        a.sd(T7, T6, 0);
        a.addi(T0, T0, 1);
        a.blt(T0, S6, train);
    }

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
phyloKernel(const PhyloParams &p)
{
    Assembler a("phylo");

    const size_t leaves = p.taxa;
    const size_t internal = leaves - 1;
    const size_t nodes = leaves + internal;

    // Random binary tree in postorder: children of internal node k are
    // indices of earlier nodes (leaves or previously created parents).
    std::vector<uint64_t> child1(internal), child2(internal);
    {
        std::vector<uint64_t> avail(leaves);
        for (size_t i = 0; i < leaves; ++i)
            avail[i] = i;
        HostRng rng(p.seed);
        for (size_t k = 0; k < internal; ++k) {
            const size_t i = rng.bounded(avail.size());
            child1[k] = avail[i];
            avail.erase(avail.begin() + static_cast<long>(i));
            const size_t j = rng.bounded(avail.size());
            child2[k] = avail[j];
            avail[j] = leaves + k;      // replace with the new parent
        }
    }

    const uint64_t c1 = a.dataU64(child1);
    const uint64_t c2 = a.dataU64(child2);
    const uint64_t align = a.dataU8(randomBytes(leaves * p.sites, 4,
                                                p.seed * 11 + 3));

    if (p.parsimony) {
        // Fitch parsimony: per site, sets are 4-bit masks; an empty
        // intersection forces a union plus one mutation (data-dependent
        // branch, the source of this kernel's misprediction profile).
        const uint64_t sets = a.reserve(nodes * 8);

        // S0 c1, S1 c2, S2 sets, S3 align, S4 site, S5 cost,
        // S6 sites, S7 leaves, S8 internal, S9 iters.
        a.li(S9, p.iters);
        a.li(S6, static_cast<int64_t>(p.sites));
        a.li(S7, static_cast<int64_t>(leaves));
        a.li(S8, static_cast<int64_t>(internal));

        a.label("iter");
        a.li(S0, static_cast<int64_t>(c1));
        a.li(S1, static_cast<int64_t>(c2));
        a.li(S2, static_cast<int64_t>(sets));
        a.li(S3, static_cast<int64_t>(align));
        a.li(S4, 0);
        a.li(S5, 0);

        a.label("site");
        // Initialize leaf sets: set[i] = 1 << residue.
        a.li(T0, 0);
        a.mul(T1, S4, S7);
        a.add(T1, S3, T1);              // &align[site * leaves]
        a.label("leaf");
        a.add(T2, T1, T0);
        a.lbu(T2, T2, 0);
        a.li(T3, 1);
        a.shl(T3, T3, T2);              // 1 << residue
        a.shli(T4, T0, 3);
        a.add(T4, S2, T4);
        a.sd(T3, T4, 0);
        a.addi(T0, T0, 1);
        a.blt(T0, S7, "leaf");

        // Internal nodes in postorder.
        a.li(T0, 0);
        a.label("node");
        a.shli(T1, T0, 3);
        a.add(T2, S0, T1);
        a.ld(T2, T2, 0);                // child1 index
        a.add(T3, S1, T1);
        a.ld(T3, T3, 0);                // child2 index
        a.shli(T2, T2, 3);
        a.add(T2, S2, T2);
        a.ld(T4, T2, 0);                // set[c1]
        a.shli(T3, T3, 3);
        a.add(T3, S2, T3);
        a.ld(T5, T3, 0);                // set[c2]
        a.and_(T6, T4, T5);
        const std::string haveInter = a.newLabel("hi");
        a.bnez(T6, haveInter);
        a.or_(T6, T4, T5);              // union on empty intersection
        a.addi(S5, S5, 1);              // one mutation
        a.label(haveInter);
        a.add(T7, S7, T0);
        a.shli(T7, T7, 3);
        a.add(T7, S2, T7);
        a.sd(T6, T7, 0);                // set[leaves + k]
        a.addi(T0, T0, 1);
        a.blt(T0, S8, "node");

        a.addi(S4, S4, 1);
        a.blt(S4, S6, "site");

        a.addi(S9, S9, -1);
        a.bnez(S9, "iter");
        a.halt();
        return a.finish();
    }

    // Maximum likelihood: 4-state conditional likelihood vectors
    // combined through a dense 4x4 substitution matrix.
    const uint64_t like = a.reserve(nodes * 4 * 8);
    const uint64_t pmat = a.dataF64(randomDoubles(16, 0.05, 0.95,
                                                  p.seed * 13 + 5));

    // S0 c1, S1 c2, S2 like, S3 align, S4 site, S5 pmat,
    // S6 sites, S7 leaves, S8 internal, S9 iters.
    a.li(S9, p.iters);
    a.li(S6, static_cast<int64_t>(p.sites));
    a.li(S7, static_cast<int64_t>(leaves));
    a.li(S8, static_cast<int64_t>(internal));
    a.li(S5, static_cast<int64_t>(pmat));

    fimm(a, 6, 1.0);
    fimm(a, 7, 0.05);

    a.label("iter");
    a.li(S4, 0);

    a.label("site");
    a.li(S0, static_cast<int64_t>(c1));
    a.li(S1, static_cast<int64_t>(c2));
    a.li(S2, static_cast<int64_t>(like));
    a.li(S3, static_cast<int64_t>(align));

    // Leaf init: likelihood 1.0 at the observed residue, 0.05 elsewhere.
    a.li(T0, 0);
    a.mul(T1, S4, S7);
    a.add(T1, S3, T1);
    a.label("leaf");
    a.add(T2, T1, T0);
    a.lbu(T2, T2, 0);                   // residue 0..3
    a.shli(T3, T0, 5);                  // node stride = 4 doubles
    a.add(T3, S2, T3);
    a.fsd(7, T3, 0);
    a.fsd(7, T3, 8);
    a.fsd(7, T3, 16);
    a.fsd(7, T3, 24);
    a.shli(T2, T2, 3);
    a.add(T2, T3, T2);
    a.fsd(6, T2, 0);                    // the observed state
    a.addi(T0, T0, 1);
    a.blt(T0, S7, "leaf");

    // Internal nodes: L[n][x] = (P[x].L[c1]) * (P[x].L[c2]).
    a.li(T0, 0);
    a.label("node");
    a.shli(T1, T0, 3);
    a.add(T2, S0, T1);
    a.ld(T2, T2, 0);
    a.add(T3, S1, T1);
    a.ld(T3, T3, 0);
    a.shli(T2, T2, 5);
    a.add(T2, S2, T2);                  // &L[c1]
    a.shli(T3, T3, 5);
    a.add(T3, S2, T3);                  // &L[c2]
    a.add(T4, S7, T0);
    a.shli(T4, T4, 5);
    a.add(T4, S2, T4);                  // &L[parent]

    for (int x = 0; x < 4; ++x) {
        // Dot products against substitution-matrix row x.
        a.fld(0, S5, x * 32 + 0);
        a.fld(1, T2, 0);
        a.fmul(2, 0, 1);                // acc over child 1
        a.fld(1, T3, 0);
        a.fmul(3, 0, 1);                // acc over child 2
        for (int y = 1; y < 4; ++y) {
            a.fld(0, S5, x * 32 + y * 8);
            a.fld(1, T2, y * 8);
            a.fmul(4, 0, 1);
            a.fadd(2, 2, 4);
            a.fld(1, T3, y * 8);
            a.fmul(4, 0, 1);
            a.fadd(3, 3, 4);
        }
        a.fmul(2, 2, 3);
        a.fsd(2, T4, x * 8);
    }

    a.addi(T0, T0, 1);
    a.blt(T0, S8, "node");

    a.addi(S4, S4, 1);
    a.blt(S4, S6, "site");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

} // namespace mica::workloads::kernels
