/**
 * @file
 * Embedded kernel builders substituting MiBench: CRC, FFT, scalar math,
 * bit twiddling, shortest paths, dictionary lookup, quicksort, image
 * filters, audio synthesis, SHA hashing, and multi-word arithmetic.
 */

#include "workloads/kernel_lib.hh"

#include <cmath>
#include <cstring>

#include "isa/assembler.hh"

namespace mica::workloads::kernels
{

using namespace isa;
using namespace isa::reg;

namespace
{

/** Load a double constant into FP register fr through a stack slot. */
void
fimm(Assembler &a, uint8_t fr, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    a.li(T9, static_cast<int64_t>(bits));
    a.sd(T9, Sp, -8);
    a.fld(fr, Sp, -8);
}

/** Host-side CRC-32 (IEEE) table. */
std::vector<uint64_t>
crcTable()
{
    std::vector<uint64_t> t(256);
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        t[i] = c;
    }
    return t;
}

} // namespace

isa::Program
crc32(const Crc32Params &p)
{
    Assembler a("crc32");

    const uint64_t buf = a.dataU8(randomBytes(p.bufBytes, 0, p.seed));
    const uint64_t table = a.dataU64(crcTable());

    // S0 buf ptr, S1 table, S2 crc, S3 i, S4 bufBytes, S9 iters.
    // The crc -> table -> crc load chain is fully serial: this kernel
    // anchors the low-ILP corner of the embedded suite.
    a.li(S9, p.iters);
    a.li(S1, static_cast<int64_t>(table));
    a.li(S4, static_cast<int64_t>(p.bufBytes));

    a.label("iter");
    a.li(S0, static_cast<int64_t>(buf));
    a.li(S2, -1);                       // crc = 0xffffffff...
    a.li(S3, 0);

    a.label("byte");
    a.lbu(T0, S0, 0);
    a.xor_(T1, S2, T0);
    a.andi(T1, T1, 0xff);
    a.shli(T1, T1, 3);
    a.add(T1, S1, T1);
    a.ld(T2, T1, 0);                    // table[(crc ^ b) & 0xff]
    a.shri(S2, S2, 8);
    a.xor_(S2, S2, T2);
    a.addi(S0, S0, 1);
    a.addi(S3, S3, 1);
    a.blt(S3, S4, "byte");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
fftButterfly(const FftParams &p)
{
    Assembler a(p.inverse ? "fftInv" : "fft");

    const size_t n = p.n;
    // Interleaved complex signal and a root-of-unity table (n/2 pairs).
    const uint64_t sig = a.dataF64(randomDoubles(2 * n, -1.0, 1.0,
                                                 p.seed));
    std::vector<double> tw(n);
    for (size_t k = 0; k < n / 2; ++k) {
        const double ang = (p.inverse ? 2.0 : -2.0) * 3.14159265358979 *
            static_cast<double>(k) / static_cast<double>(n);
        tw[2 * k] = std::cos(ang);
        tw[2 * k + 1] = std::sin(ang);
    }
    const uint64_t twid = a.dataF64(tw);

    // Bit-reversal permutation: irregular loads/stores up front.
    // S0 sig, S1 twiddle, S2 i, S3 j, S4 n, S5 len, S6 half bytes,
    // S7 group base, S8 k, S9 iters; A0..A3 address temps;
    // f0..f3 even/odd, f4/f5 twiddle, f6/f7 products.
    unsigned log2n = 0;
    while ((1ull << log2n) < n)
        ++log2n;

    a.li(S9, p.iters);
    a.li(S4, static_cast<int64_t>(n));

    a.label("iter");
    a.li(S0, static_cast<int64_t>(sig));
    a.li(S1, static_cast<int64_t>(twid));

    // --- bit reversal ---
    a.li(S2, 0);
    a.label("rev");
    a.li(S3, 0);                        // j = reverse(i)
    a.mv(T0, S2);
    for (unsigned b = 0; b < log2n; ++b) {
        a.shli(S3, S3, 1);
        a.andi(T1, T0, 1);
        a.or_(S3, S3, T1);
        a.shri(T0, T0, 1);
    }
    const std::string noSwap = a.newLabel("ns");
    a.bge(S2, S3, noSwap);              // swap once per pair
    a.shli(A0, S2, 4);
    a.add(A0, S0, A0);
    a.shli(A1, S3, 4);
    a.add(A1, S0, A1);
    a.fld(0, A0, 0);
    a.fld(1, A0, 8);
    a.fld(2, A1, 0);
    a.fld(3, A1, 8);
    a.fsd(2, A0, 0);
    a.fsd(3, A0, 8);
    a.fsd(0, A1, 0);
    a.fsd(1, A1, 8);
    a.label(noSwap);
    a.addi(S2, S2, 1);
    a.blt(S2, S4, "rev");

    // --- butterfly stages ---
    a.li(S5, 2);                        // len = 2
    a.label("stage");
    a.shri(S6, S5, 1);                  // half

    a.li(S7, 0);                        // group base i
    a.label("group");
    a.li(S8, 0);                        // k within group
    a.label("bfly");
    // even = sig[i + k], odd = sig[i + k + half]
    a.add(T2, S7, S8);
    a.shli(A0, T2, 4);
    a.add(A0, S0, A0);
    a.shli(A1, S6, 4);
    a.add(A1, A0, A1);
    a.fld(0, A0, 0);                    // er
    a.fld(1, A0, 8);                    // ei
    a.fld(2, A1, 0);                    // or
    a.fld(3, A1, 8);                    // oi
    // twiddle index = k * (n / len)
    a.div(T3, S4, S5);
    a.mul(T3, T3, S8);
    a.shli(T3, T3, 4);
    a.add(A2, S1, T3);
    a.fld(4, A2, 0);                    // wr
    a.fld(5, A2, 8);                    // wi
    a.fmul(6, 2, 4);
    a.fmul(7, 3, 5);
    a.fsub(6, 6, 7);                    // tr = or*wr - oi*wi
    a.fmul(7, 2, 5);
    a.fmul(2, 3, 4);
    a.fadd(7, 7, 2);                    // ti = or*wi + oi*wr
    a.fadd(2, 0, 6);
    a.fsd(2, A0, 0);                    // even' = e + t
    a.fadd(3, 1, 7);
    a.fsd(3, A0, 8);
    a.fsub(2, 0, 6);
    a.fsd(2, A1, 0);                    // odd' = e - t
    a.fsub(3, 1, 7);
    a.fsd(3, A1, 8);

    a.addi(S8, S8, 1);
    a.blt(S8, S6, "bfly");

    a.add(S7, S7, S5);                  // next group
    a.blt(S7, S4, "group");

    a.shli(S5, S5, 1);                  // len *= 2
    a.bge(S4, S5, "stage");

    if (p.inverse) {
        // The inverse transform carries the 1/n normalization pass the
        // forward FFT does not have (this is also what distinguishes
        // the two directions' profiles).
        double inv = 1.0 / static_cast<double>(n);
        uint64_t bits;
        std::memcpy(&bits, &inv, 8);
        a.li(T9, static_cast<int64_t>(bits));
        a.sd(T9, Sp, -8);
        a.fld(6, Sp, -8);
        a.li(T0, static_cast<int64_t>(2 * n));
        a.li(A3, static_cast<int64_t>(sig));
        const std::string norm = a.newLabel("nm");
        a.label(norm);
        a.fld(0, A3, 0);
        a.fmul(0, 0, 6);
        a.fsd(0, A3, 0);
        a.addi(A3, A3, 8);
        a.addi(T0, T0, -1);
        a.bnez(T0, norm);
    }

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
basicMath(const BasicMathParams &p)
{
    Assembler a("basicMath");

    const uint64_t coefs = a.dataF64(randomDoubles(p.problems * 3,
                                                   0.5, 4.0, p.seed));
    const uint64_t roots = a.reserve(p.problems * 8);
    std::vector<uint64_t> squares(p.problems);
    {
        HostRng rng(p.seed * 3 + 1);
        for (auto &s : squares)
            s = rng.bounded(1u << 30);
    }
    const uint64_t squareArr = a.dataU64(squares);

    // Newton iterations for a cubic root (serial FP div chains) plus a
    // bit-by-bit integer square root (branch per bit): the scalar-math
    // profile with almost no memory traffic.
    // S0 coef ptr, S1 out ptr, S2 i, S3 problems, S4 newton iter,
    // S5 squares ptr, S9 iters; f0 x, f1..f3 coefs, f4/f5 temps.
    a.li(S9, p.iters);
    a.li(S3, static_cast<int64_t>(p.problems));

    a.label("iter");
    a.li(S0, static_cast<int64_t>(coefs));
    a.li(S1, static_cast<int64_t>(roots));
    a.li(S5, static_cast<int64_t>(squareArr));
    a.li(S2, 0);

    a.label("prob");
    a.fld(1, S0, 0);                    // a
    a.fld(2, S0, 8);                    // b
    a.fld(3, S0, 16);                   // c
    fimm(a, 0, 1.5);                    // x0

    a.li(S4, 0);
    a.label("newton");
    // f = a x^3 + b x - c ; f' = 3 a x^2 + b ; x -= f / f'
    a.fmul(4, 0, 0);                    // x^2
    a.fmul(5, 4, 0);                    // x^3
    a.fmul(5, 5, 1);
    a.fmul(6, 0, 2);
    a.fadd(5, 5, 6);
    a.fsub(5, 5, 3);                    // f
    a.fmul(6, 4, 1);
    a.fadd(6, 6, 6);
    a.fmul(7, 4, 1);
    a.fadd(6, 6, 7);                    // 3 a x^2
    a.fadd(6, 6, 2);                    // f'
    a.fdiv(5, 5, 6);
    a.fsub(0, 0, 5);
    a.addi(S4, S4, 1);
    a.slti(T0, S4, 4);
    a.bnez(T0, "newton");

    a.shli(T1, S2, 3);
    a.add(T1, S1, T1);
    a.fsd(0, T1, 0);

    // Integer square root, one result bit per loop iteration.
    a.shli(T1, S2, 3);
    a.add(T1, S5, T1);
    a.ld(T2, T1, 0);                    // value
    a.li(T3, 0);                        // result
    a.li(T4, 1);
    a.shli(T4, T4, 28);                 // probe bit
    a.label("isqrt");
    a.or_(T5, T3, T4);
    a.mul(T6, T5, T5);
    const std::string tooBig = a.newLabel("tb");
    a.blt(T2, T6, tooBig);
    a.mv(T3, T5);                       // keep the bit
    a.label(tooBig);
    a.shri(T4, T4, 1);
    a.bnez(T4, "isqrt");

    a.addi(S0, S0, 24);
    a.addi(S2, S2, 1);
    a.blt(S2, S3, "prob");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
bitOps(const BitOpsParams &p)
{
    Assembler a(p.chess ? "bitboard" : "bitcount");

    const uint64_t words = a.dataU64([&] {
        HostRng rng(p.seed);
        std::vector<uint64_t> v(p.words);
        for (auto &w : v)
            w = rng.next() & rng.next();    // sparse-ish boards
        return v;
    }());
    const uint64_t masks = a.dataU64([&] {
        HostRng rng(p.seed * 3 + 1);
        std::vector<uint64_t> v(64);
        for (auto &w : v)
            w = rng.next();
        return v;
    }());

    // S0 word ptr, S1 i, S2 word, S3 count acc, S4 words, S5 mask base,
    // S9 iters. Kernighan popcount: the loop trip count is data
    // dependent, making the back edge mispredict-prone.
    a.li(S9, p.iters);
    a.li(S4, static_cast<int64_t>(p.words));
    a.li(S5, static_cast<int64_t>(masks));

    a.label("iter");
    a.li(S0, static_cast<int64_t>(words));
    a.li(S1, 0);
    a.li(S3, 0);

    a.label("word");
    a.ld(S2, S0, 0);

    if (p.chess) {
        // Attack-mask expansion: fold table masks selected by the low
        // occupied squares into the board before counting.
        a.andi(T0, S2, 63);
        a.shli(T0, T0, 3);
        a.add(T0, S5, T0);
        a.ld(T1, T0, 0);
        a.and_(T2, S2, T1);
        a.shri(T3, S2, 17);
        a.xor_(S2, T2, T3);
        a.or_(S2, S2, T1);
    }

    a.label("pop");
    a.beqz(S2, "popdone");
    a.addi(T4, S2, -1);
    a.and_(S2, S2, T4);                 // clear lowest set bit
    a.addi(S3, S3, 1);
    a.j("pop");
    a.label("popdone");

    a.addi(S0, S0, 8);
    a.addi(S1, S1, 1);
    a.blt(S1, S4, "word");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
graphSssp(const GraphParams &p)
{
    Assembler a("dijkstra");

    // Adjacency lists: per node, `degree` neighbor indices + weights.
    HostRng rng(p.seed);
    std::vector<uint64_t> adj(p.nodes * p.degree);
    std::vector<uint64_t> wgt(p.nodes * p.degree);
    for (size_t i = 0; i < adj.size(); ++i) {
        adj[i] = rng.bounded(p.nodes);
        wgt[i] = 1 + rng.bounded(64);
    }
    const uint64_t adjArr = a.dataU64(adj);
    const uint64_t wgtArr = a.dataU64(wgt);
    const uint64_t dist = a.reserve(p.nodes * 8);
    const uint64_t visited = a.reserve(p.nodes * 8);

    const int64_t inf = 1ll << 40;

    // S0 dist, S1 visited, S2 round, S3 best node, S4 best dist,
    // S5 scan idx, S6 nodes, S7 neighbor idx, S8 degree, S9 iters.
    a.li(S9, p.iters);
    a.li(S6, static_cast<int64_t>(p.nodes));
    a.li(S8, p.degree);

    a.label("iter");
    a.li(S0, static_cast<int64_t>(dist));
    a.li(S1, static_cast<int64_t>(visited));

    // Initialize: dist[i] = INF (dist[0] = 0), visited[i] = 0.
    a.li(T0, 0);
    a.li(T1, inf);
    a.label("init");
    a.shli(T2, T0, 3);
    a.add(T3, S0, T2);
    a.sd(T1, T3, 0);
    a.add(T3, S1, T2);
    a.sd(Zero, T3, 0);
    a.addi(T0, T0, 1);
    a.blt(T0, S6, "init");
    a.sd(Zero, S0, 0);

    a.li(S2, 0);                        // extraction round
    a.label("round");

    // Min-scan over unvisited nodes (MiBench dijkstra has no heap).
    a.li(S3, -1);
    a.li(S4, inf);
    a.li(S5, 0);
    a.label("scan");
    a.shli(T2, S5, 3);
    a.add(T3, S1, T2);
    a.ld(T4, T3, 0);                    // visited?
    const std::string skip = a.newLabel("sk");
    a.bnez(T4, skip);
    a.add(T3, S0, T2);
    a.ld(T5, T3, 0);
    a.bge(T5, S4, skip);                // data-dependent running min
    a.mv(S4, T5);
    a.mv(S3, S5);
    a.label(skip);
    a.addi(S5, S5, 1);
    a.blt(S5, S6, "scan");

    const std::string roundDone = a.newLabel("rd");
    a.blt(S3, Zero, roundDone);         // no reachable node left

    // Mark visited and relax the neighbors.
    a.shli(T2, S3, 3);
    a.add(T3, S1, T2);
    a.li(T4, 1);
    a.sd(T4, T3, 0);

    a.li(S7, 0);
    a.label("relax");
    a.mul(T5, S3, S8);
    a.add(T5, T5, S7);
    a.shli(T5, T5, 3);
    a.li(T6, static_cast<int64_t>(adjArr));
    a.add(T6, T6, T5);
    a.ld(T7, T6, 0);                    // neighbor id
    a.li(T6, static_cast<int64_t>(wgtArr));
    a.add(T6, T6, T5);
    a.ld(T8, T6, 0);                    // edge weight
    a.add(T8, S4, T8);                  // candidate distance
    a.shli(T7, T7, 3);
    a.add(T7, S0, T7);
    a.ld(T6, T7, 0);
    const std::string noRelax = a.newLabel("nr");
    a.bge(T8, T6, noRelax);
    a.sd(T8, T7, 0);
    a.label(noRelax);
    a.addi(S7, S7, 1);
    a.blt(S7, S8, "relax");

    a.addi(S2, S2, 1);
    a.blt(S2, S6, "round");
    a.label(roundDone);

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
hashDict(const HashDictParams &p)
{
    Assembler a("hashDict");

    // Dictionary: fixed 16-byte slots {len, 15 chars}; hash table of
    // head indices (+1) and a chain array. Built host-side so the
    // kernel only probes.
    HostRng rng(p.seed);
    std::vector<uint8_t> dict(p.numWords * 16, 0);
    std::vector<uint64_t> heads(p.tableSlots, 0);
    std::vector<uint64_t> chain(p.numWords, 0);
    const auto hashWord = [&](const uint8_t *w, size_t len) {
        uint64_t h = 1469598103934665603ull;
        for (size_t i = 0; i < len; ++i)
            h = (h ^ w[i]) * 1099511628211ull;
        return h & (p.tableSlots - 1);
    };
    for (size_t i = 0; i < p.numWords; ++i) {
        const size_t len = 3 + rng.bounded(12);
        dict[i * 16] = static_cast<uint8_t>(len);
        for (size_t c = 0; c < len; ++c)
            dict[i * 16 + 1 + c] =
                static_cast<uint8_t>('a' + rng.bounded(26));
        const uint64_t h = hashWord(&dict[i * 16 + 1], len);
        chain[i] = heads[h];
        heads[h] = i + 1;
    }
    // Queries: half existing words, half random (mostly missing).
    std::vector<uint8_t> queries(p.numQueries * 16, 0);
    for (size_t q = 0; q < p.numQueries; ++q) {
        if (rng.bounded(2) == 0) {
            const size_t i = rng.bounded(p.numWords);
            std::memcpy(&queries[q * 16], &dict[i * 16], 16);
        } else {
            const size_t len = 3 + rng.bounded(12);
            queries[q * 16] = static_cast<uint8_t>(len);
            for (size_t c = 0; c < len; ++c)
                queries[q * 16 + 1 + c] =
                    static_cast<uint8_t>('a' + rng.bounded(26));
        }
    }

    const uint64_t dictArr = a.dataU8(dict);
    const uint64_t headArr = a.dataU64(heads);
    const uint64_t chainArr = a.dataU64(chain);
    const uint64_t queryArr = a.dataU8(queries);

    // S0 query ptr, S1 q, S2 hash, S3 chain cursor (word idx + 1),
    // S4 query len, S5 found acc, S6 numQueries, S7 char idx, S8 temp,
    // S9 iters.
    a.li(S9, p.iters);
    a.li(S6, static_cast<int64_t>(p.numQueries));

    a.label("iter");
    a.li(S0, static_cast<int64_t>(queryArr));
    a.li(S1, 0);
    a.li(S5, 0);

    a.label("query");
    a.lbu(S4, S0, 0);                   // query length

    // FNV-style hash over the query characters.
    a.li(S2, 14695981039346656037ull & 0x7fffffffffffffffll);
    a.li(S7, 0);
    a.label("hash");
    a.addi(T0, S7, 1);
    a.add(T0, S0, T0);
    a.lbu(T1, T0, 0);
    a.xor_(S2, S2, T1);
    a.muli(S2, S2, 1099511628211ll);
    a.addi(S7, S7, 1);
    a.blt(S7, S4, "hash");
    a.li(T2, static_cast<int64_t>(p.tableSlots - 1));
    a.and_(S2, S2, T2);

    // Probe the chain.
    a.shli(T3, S2, 3);
    a.li(T4, static_cast<int64_t>(headArr));
    a.add(T3, T3, T4);
    a.ld(S3, T3, 0);                    // head (idx + 1)

    a.label("chase");
    a.beqz(S3, "next_query");
    a.addi(T5, S3, -1);
    a.shli(T5, T5, 4);
    a.li(T6, static_cast<int64_t>(dictArr));
    a.add(T5, T5, T6);                  // &dict[word]

    // String compare: length byte, then characters.
    a.lbu(T7, T5, 0);
    a.bne(T7, S4, "chase_next");
    a.li(S7, 0);
    a.label("strcmp");
    a.bge(S7, S4, "match");
    a.addi(T8, S7, 1);
    a.add(T0, T5, T8);
    a.lbu(T1, T0, 0);
    a.add(T0, S0, T8);
    a.lbu(T2, T0, 0);
    a.bne(T1, T2, "chase_next");
    a.addi(S7, S7, 1);
    a.j("strcmp");
    a.label("match");
    a.addi(S5, S5, 1);
    a.j("next_query");

    a.label("chase_next");
    a.addi(T5, S3, -1);
    a.shli(T5, T5, 3);
    a.li(T6, static_cast<int64_t>(chainArr));
    a.add(T5, T5, T6);
    a.ld(S3, T5, 0);
    a.j("chase");

    a.label("next_query");
    a.addi(S0, S0, 16);
    a.addi(S1, S1, 1);
    a.blt(S1, S6, "query");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
quickSort(const QuickSortParams &p)
{
    Assembler a("quickSort");

    const uint64_t arr = a.dataU64([&] {
        HostRng rng(p.seed);
        std::vector<uint64_t> v(p.elems);
        for (auto &x : v)
            x = rng.next() >> 16;
        return v;
    }());
    const uint64_t work = a.reserve(p.elems * 8);
    // Worst-case pending ranges is O(elems); size the explicit stack
    // for that rather than the expected O(log n).
    const uint64_t stack = a.reserve(p.elems * 16 + 64);

    // Iterative Lomuto quicksort over a scratch copy. The partition
    // compare is ~50/50 on random data — the classic hard branch.
    // S0 array, S1 stack ptr, S2 lo, S3 hi, S4 pivot, S5 i, S6 j,
    // S7/S8 temps, S9 iters.
    a.li(S9, p.iters);

    a.label("iter");
    // Refresh the working copy so every iteration sorts fresh data.
    a.li(T0, static_cast<int64_t>(arr));
    a.li(T1, static_cast<int64_t>(work));
    a.li(T2, static_cast<int64_t>(p.elems));
    a.label("copy");
    a.ld(T3, T0, 0);
    a.sd(T3, T1, 0);
    a.addi(T0, T0, 8);
    a.addi(T1, T1, 8);
    a.addi(T2, T2, -1);
    a.bnez(T2, "copy");

    a.li(S0, static_cast<int64_t>(work));
    a.li(S1, static_cast<int64_t>(stack));
    // Push the initial range [0, elems-1].
    a.sd(Zero, S1, 0);
    a.li(T0, static_cast<int64_t>(p.elems - 1));
    a.sd(T0, S1, 8);
    a.addi(S1, S1, 16);

    a.label("pop");
    a.li(T1, static_cast<int64_t>(stack));
    a.bge(T1, S1, "sorted");            // stack empty
    a.addi(S1, S1, -16);
    a.ld(S2, S1, 0);                    // lo
    a.ld(S3, S1, 8);                    // hi
    a.bge(S2, S3, "pop");               // trivial range

    // Partition around a[hi].
    a.shli(T2, S3, 3);
    a.add(T2, S0, T2);
    a.ld(S4, T2, 0);                    // pivot
    a.addi(S5, S2, -1);                 // i = lo - 1
    a.mv(S6, S2);                       // j = lo

    a.label("part");
    a.bge(S6, S3, "part_done");
    a.shli(T3, S6, 3);
    a.add(T3, S0, T3);
    a.ld(S7, T3, 0);                    // a[j]
    const std::string noSwap = a.newLabel("nsw");
    a.blt(S4, S7, noSwap);              // a[j] <= pivot?
    a.addi(S5, S5, 1);
    a.shli(T4, S5, 3);
    a.add(T4, S0, T4);
    a.ld(S8, T4, 0);
    a.sd(S7, T4, 0);
    a.sd(S8, T3, 0);
    a.label(noSwap);
    a.addi(S6, S6, 1);
    a.j("part");
    a.label("part_done");

    // Place the pivot at i+1 and push both halves.
    a.addi(S5, S5, 1);
    a.shli(T4, S5, 3);
    a.add(T4, S0, T4);
    a.ld(S8, T4, 0);
    a.sd(S4, T4, 0);
    a.shli(T3, S3, 3);
    a.add(T3, S0, T3);
    a.sd(S8, T3, 0);

    a.addi(T5, S5, -1);
    a.sd(S2, S1, 0);
    a.sd(T5, S1, 8);
    a.addi(S1, S1, 16);
    a.addi(T5, S5, 1);
    a.sd(T5, S1, 0);
    a.sd(S3, S1, 8);
    a.addi(S1, S1, 16);
    a.j("pop");

    a.label("sorted");
    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
imageFilter2D(const ImageFilterParams &p)
{
    Assembler a("imageFilter");

    const size_t w = p.width, h = p.height;
    const uint64_t img = a.dataU8(randomBytes(w * h * 3, 0, p.seed));
    const uint64_t out = a.reserveLazy(w * h * 4 + 64);
    using V = ImageFilterParams::Variant;

    // S0 img row ptr, S1 out ptr, S2 x, S3 y, S4 width, S5 height,
    // S6 acc/err, S7 img base, S8 temp, S9 iters; A0..A5 pixel temps.
    a.li(S9, p.iters);
    a.li(S4, static_cast<int64_t>(w));
    a.li(S5, static_cast<int64_t>(h));
    a.li(S7, static_cast<int64_t>(img));

    a.label("iter");
    a.li(S1, static_cast<int64_t>(out));
    if (p.variant == V::Dither)
        a.li(S6, 0);                    // running diffusion error
    a.li(S3, 1);                        // y (skip border)

    a.label("yloop");
    a.mul(T0, S3, S4);
    a.add(S0, S7, T0);                  // &img[y][0] (byte pixels)
    a.li(S2, 1);                        // x

    a.label("xloop");
    a.add(T1, S0, S2);                  // &img[y][x]

    switch (p.variant) {
      case V::Smooth:
        // 3x3 box filter.
        a.li(A0, 0);
        for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
                a.lbu(A1, T1, dy * static_cast<int64_t>(w) + dx);
                a.add(A0, A0, A1);
            }
        }
        a.muli(A0, A0, 57);             // ~ /9 in fixed point
        a.shri(A0, A0, 9);
        a.sb(A0, S1, 0);
        a.addi(S1, S1, 1);
        break;

      case V::Threshold:
        // USAN: count neighbors within a brightness threshold of the
        // nucleus (data-dependent branch per neighbor).
        a.lbu(A0, T1, 0);               // center
        a.li(A2, 0);                    // count
        for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
                if (dx == 0 && dy == 0)
                    continue;
                a.lbu(A1, T1, dy * static_cast<int64_t>(w) + dx);
                a.sub(A1, A1, A0);
                a.sari(A3, A1, 63);
                a.xor_(A1, A1, A3);
                a.sub(A1, A1, A3);      // |diff|
                const std::string far = a.newLabel("far");
                a.slti(A3, A1, 27);
                a.beqz(A3, far);
                a.addi(A2, A2, 1);
                a.label(far);
            }
        }
        a.sb(A2, S1, 0);
        a.addi(S1, S1, 1);
        break;

      case V::Gray:
        // Weighted RGB -> gray; three plane loads per pixel.
        a.lbu(A0, T1, 0);
        a.li(A3, static_cast<int64_t>(w * h));
        a.add(A4, T1, A3);
        a.lbu(A1, A4, 0);
        a.add(A4, A4, A3);
        a.lbu(A2, A4, 0);
        a.muli(A0, A0, 77);
        a.muli(A1, A1, 151);
        a.muli(A2, A2, 28);
        a.add(A0, A0, A1);
        a.add(A0, A0, A2);
        a.shri(A0, A0, 8);
        a.sb(A0, S1, 0);
        a.addi(S1, S1, 1);
        break;

      case V::Rgba:
        // Gray -> RGBA expansion: one load, four stores.
        a.lbu(A0, T1, 0);
        a.sb(A0, S1, 0);
        a.sb(A0, S1, 1);
        a.sb(A0, S1, 2);
        a.li(A1, 255);
        a.sb(A1, S1, 3);
        a.addi(S1, S1, 4);
        break;

      case V::Dither: {
        // 1D error diffusion: the error register serializes the row.
        a.lbu(A0, T1, 0);
        a.add(A0, A0, S6);
        const std::string white = a.newLabel("wh");
        const std::string stored = a.newLabel("st");
        a.slti(A1, A0, 128);
        a.beqz(A1, white);
        a.mv(S6, A0);                   // error = value - 0
        a.sb(Zero, S1, 0);
        a.j(stored);
        a.label(white);
        a.addi(S6, A0, -255);           // error = value - 255
        a.li(A2, 255);
        a.sb(A2, S1, 0);
        a.label(stored);
        a.sari(S6, S6, 1);              // diffuse half the error
        a.addi(S1, S1, 1);
        break;
      }

      case V::Median:
        // 3x3 median via a partial compare/swap network on A0..A5
        // (branches on pixel data at every exchange).
        a.lbu(A0, T1, -static_cast<int64_t>(w) - 1);
        a.lbu(A1, T1, -static_cast<int64_t>(w) + 1);
        a.lbu(A2, T1, -1);
        a.lbu(A3, T1, 0);
        a.lbu(A4, T1, 1);
        a.lbu(A5, T1, static_cast<int64_t>(w));
        for (const auto &[x, y] : std::vector<std::pair<int, int>>{
                 {0, 1}, {2, 3}, {4, 5}, {0, 2}, {1, 4}, {3, 5},
                 {1, 2}, {3, 4}, {2, 3}}) {
            const std::string ordered = a.newLabel("ord");
            a.bge(static_cast<uint8_t>(A0 + y),
                  static_cast<uint8_t>(A0 + x), ordered);
            a.mv(T8, static_cast<uint8_t>(A0 + x));
            a.mv(static_cast<uint8_t>(A0 + x),
                 static_cast<uint8_t>(A0 + y));
            a.mv(static_cast<uint8_t>(A0 + y), T8);
            a.label(ordered);
        }
        a.sb(A3, S1, 0);                // approximate median
        a.addi(S1, S1, 1);
        break;
    }

    a.addi(S2, S2, 1);
    a.addi(T9, S4, -1);
    a.blt(S2, T9, "xloop");

    a.addi(S3, S3, 1);
    a.addi(T9, S5, -1);
    a.blt(S3, T9, "yloop");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
audioSynth(const AudioSynthParams &p)
{
    Assembler a("audioSynth");

    const uint64_t coefs = a.dataF64(randomDoubles(p.stages * 4,
                                                   -0.9, 0.9, p.seed));
    const uint64_t state = a.reserve(p.stages * 16);
    const uint64_t out = a.reserveLazy(p.samples * 8 + 16);

    // Oscillator + cascaded biquads: serial FP chains through every
    // stage (the synthesis/psychoacoustic-filter profile).
    // S0 out, S1 coef ptr, S2 state ptr, S3 sample, S4 stage,
    // S5 samples, S6 stages, S9 iters;
    // f0 x, f1 phase, f2 dphase, f3/f4 coefs, f5/f6 state, f7 temp.
    a.li(S9, p.iters);
    a.li(S5, static_cast<int64_t>(p.samples));
    a.li(S6, p.stages);
    fimm(a, 2, 0.03);                   // phase increment

    a.label("iter");
    a.li(S0, static_cast<int64_t>(out));
    fimm(a, 1, 0.0);
    a.li(S3, 0);

    a.label("sample");
    // Parabolic sine approximation: x = phase * (2 - |phase|)-ish.
    a.fadd(1, 1, 2);
    a.fabs_(7, 1);
    fimm(a, 3, 2.0);
    a.fsub(7, 3, 7);
    a.fmul(0, 1, 7);
    // Phase wrap (predictable branch, taken rarely).
    fimm(a, 3, 1.0);
    a.fclt(T0, 3, 1);
    const std::string noWrap = a.newLabel("nw");
    a.beqz(T0, noWrap);
    fimm(a, 4, -1.0);
    a.fmov(1, 4);
    a.label(noWrap);

    // Biquad cascade.
    a.li(S1, static_cast<int64_t>(coefs));
    a.li(S2, static_cast<int64_t>(state));
    a.li(S4, 0);
    a.label("stage");
    if (p.withTables) {
        a.fld(3, S1, 0);                // b0
        a.fld(4, S1, 8);                // a1
    } else {
        fimm(a, 3, 0.6);
        fimm(a, 4, -0.3);
    }
    a.fld(5, S2, 0);                    // z1
    a.fld(6, S2, 8);                    // z2
    a.fmul(7, 0, 3);
    a.fadd(7, 7, 5);                    // y = b0 x + z1
    a.fmul(5, 7, 4);
    a.fadd(5, 5, 6);                    // z1' = a1 y + z2
    a.fmul(6, 7, 3);                    // z2' = b0 y
    a.fsd(5, S2, 0);
    a.fsd(6, S2, 8);
    a.fmov(0, 7);                       // feed the next stage
    a.addi(S1, S1, 32);
    a.addi(S2, S2, 16);
    a.addi(S4, S4, 1);
    a.blt(S4, S6, "stage");

    a.fsd(0, S0, 0);
    a.addi(S0, S0, 8);
    a.addi(S3, S3, 1);
    a.blt(S3, S5, "sample");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
shaHash(const ShaParams &p)
{
    Assembler a("sha");

    const uint64_t buf = a.dataU8(randomBytes(p.bufBytes, 0, p.seed));
    const uint64_t sched = a.reserve(80 * 8);

    const size_t blocks = p.bufBytes / 64;

    // S0 block ptr, S1 schedule, S2 block idx, S3 t, S4 a, S5 b,
    // S6 c, S7 d, S8 e, S9 iters; T0..T8 temps, A0 blocks.
    a.li(S9, p.iters);
    a.li(A0, static_cast<int64_t>(blocks));
    a.li(S1, static_cast<int64_t>(sched));

    a.label("iter");
    a.li(S0, static_cast<int64_t>(buf));
    a.li(S2, 0);
    a.li(S4, 0x67452301);
    a.li(S5, 0xefcdab89);
    a.li(S6, 0x98badcfe);
    a.li(S7, 0x10325476);
    a.li(S8, 0xc3d2e1f0);

    a.label("block");
    // Message schedule: W[0..15] from the block, W[16..79] by XOR+rot.
    a.li(S3, 0);
    a.label("w16");
    a.shli(T0, S3, 2);
    a.add(T0, S0, T0);
    a.lwu(T1, T0, 0);
    a.shli(T2, S3, 3);
    a.add(T2, S1, T2);
    a.sd(T1, T2, 0);
    a.addi(S3, S3, 1);
    a.slti(T3, S3, 16);
    a.bnez(T3, "w16");

    a.label("w80");
    a.shli(T0, S3, 3);
    a.add(T0, S1, T0);
    a.ld(T1, T0, -3 * 8);
    a.ld(T2, T0, -8 * 8);
    a.xor_(T1, T1, T2);
    a.ld(T2, T0, -14 * 8);
    a.xor_(T1, T1, T2);
    a.ld(T2, T0, -16 * 8);
    a.xor_(T1, T1, T2);
    a.shli(T2, T1, 1);                  // rotl32 by 1
    a.shri(T3, T1, 31);
    a.or_(T1, T2, T3);
    a.li(T4, 0xffffffff);
    a.and_(T1, T1, T4);
    a.sd(T1, T0, 0);
    a.addi(S3, S3, 1);
    a.slti(T3, S3, 80);
    a.bnez(T3, "w80");

    // 80 rounds; the round function is selected by t's range, giving
    // three long-period, perfectly predictable branches.
    a.li(S3, 0);
    a.label("round");
    a.slti(T0, S3, 20);
    const std::string fMaj = a.newLabel("fm");
    const std::string fXor = a.newLabel("fx");
    const std::string fDone = a.newLabel("fd");
    a.beqz(T0, fXor);
    // Ch(b, c, d)
    a.and_(T1, S5, S6);
    a.xori(T2, S5, -1);
    a.and_(T2, T2, S7);
    a.or_(T1, T1, T2);
    a.j(fDone);
    a.label(fXor);
    a.slti(T0, S3, 40);
    a.beqz(T0, fMaj);
    a.xor_(T1, S5, S6);
    a.xor_(T1, T1, S7);
    a.j(fDone);
    a.label(fMaj);
    a.and_(T1, S5, S6);
    a.and_(T2, S5, S7);
    a.or_(T1, T1, T2);
    a.and_(T2, S6, S7);
    a.or_(T1, T1, T2);
    a.label(fDone);

    a.shli(T2, S4, 5);                  // rotl32(a, 5)
    a.shri(T3, S4, 27);
    a.or_(T2, T2, T3);
    a.add(T2, T2, T1);
    a.add(T2, T2, S8);
    a.shli(T4, S3, 3);
    a.add(T4, S1, T4);
    a.ld(T5, T4, 0);                    // W[t]
    a.add(T2, T2, T5);
    a.li(T6, 0x5a827999);
    a.add(T2, T2, T6);
    a.li(T7, 0xffffffff);
    a.and_(T2, T2, T7);

    a.mv(S8, S7);                       // e = d
    a.mv(S7, S6);                       // d = c
    a.shli(T3, S5, 30);                 // c = rotl32(b, 30)
    a.shri(T5, S5, 2);
    a.or_(S6, T3, T5);
    a.and_(S6, S6, T7);
    a.mv(S5, S4);                       // b = a
    a.mv(S4, T2);                       // a = temp

    a.addi(S3, S3, 1);
    a.slti(T0, S3, 80);
    a.bnez(T0, "round");

    a.addi(S0, S0, 64);
    a.addi(S2, S2, 1);
    a.blt(S2, A0, "block");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
bigIntArith(const BigIntParams &p)
{
    Assembler a("bigInt");

    // 32-bit limbs held in 64-bit slots so products fit in one word.
    const auto limbs = [&](uint64_t seed) {
        HostRng rng(seed);
        std::vector<uint64_t> v(p.words);
        for (auto &x : v)
            x = rng.next() & 0xffffffffull;
        return v;
    };
    const uint64_t opA = a.dataU64(limbs(p.seed));
    const uint64_t opB = a.dataU64(limbs(p.seed * 3 + 1));
    const uint64_t sum = a.reserve((p.words + 1) * 8);
    const uint64_t prod = a.reserve((2 * p.words + 1) * 8);

    // S0 a, S1 b, S2 out, S3 i, S4 j, S5 carry, S6 words, S7 a[i],
    // S8 acc addr, S9 iters.
    a.li(S9, p.iters);
    a.li(S6, static_cast<int64_t>(p.words));

    a.label("iter");
    // --- multi-word add: serial carry chain ---
    a.li(S0, static_cast<int64_t>(opA));
    a.li(S1, static_cast<int64_t>(opB));
    a.li(S2, static_cast<int64_t>(sum));
    a.li(S5, 0);
    a.li(S3, 0);
    a.label("add");
    a.ld(T0, S0, 0);
    a.ld(T1, S1, 0);
    a.add(T2, T0, T1);
    a.add(T2, T2, S5);
    a.shri(S5, T2, 32);                 // carry out
    a.li(T3, 0xffffffff);
    a.and_(T2, T2, T3);
    a.sd(T2, S2, 0);
    a.addi(S0, S0, 8);
    a.addi(S1, S1, 8);
    a.addi(S2, S2, 8);
    a.addi(S3, S3, 1);
    a.blt(S3, S6, "add");
    a.sd(S5, S2, 0);

    // --- schoolbook multiply: mul-heavy inner loop ---
    // Clear the accumulator.
    a.li(S2, static_cast<int64_t>(prod));
    a.li(S3, 0);
    a.shli(T0, S6, 1);
    a.label("clr");
    a.sd(Zero, S2, 0);
    a.addi(S2, S2, 8);
    a.addi(S3, S3, 1);
    a.blt(S3, T0, "clr");

    a.li(S3, 0);
    a.label("mul_i");
    a.li(S0, static_cast<int64_t>(opA));
    a.shli(T1, S3, 3);
    a.add(T1, S0, T1);
    a.ld(S7, T1, 0);                    // a[i]

    a.li(S1, static_cast<int64_t>(opB));
    a.li(S2, static_cast<int64_t>(prod));
    a.shli(T2, S3, 3);
    a.add(S8, S2, T2);                  // &prod[i]
    a.li(S4, 0);
    a.label("mul_j");
    a.ld(T3, S1, 0);                    // b[j]
    a.mul(T4, S7, T3);                  // 32x32 -> 64
    a.ld(T5, S8, 0);
    a.add(T5, T5, T4);
    a.li(T6, 0xffffffff);
    a.and_(T7, T5, T6);
    a.sd(T7, S8, 0);
    a.shri(T5, T5, 32);                 // propagate into the next limb
    a.ld(T7, S8, 8);
    a.add(T7, T7, T5);
    a.sd(T7, S8, 8);
    a.addi(S1, S1, 8);
    a.addi(S8, S8, 8);
    a.addi(S4, S4, 1);
    a.blt(S4, S6, "mul_j");

    a.addi(S3, S3, 1);
    a.blt(S3, S6, "mul_i");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

} // namespace mica::workloads::kernels
