/**
 * @file
 * Host-side data-generation helpers shared by the kernel builders.
 */

#include "workloads/kernel_lib.hh"

#include <numeric>

namespace mica::workloads::kernels
{

std::vector<uint8_t>
randomBytes(size_t n, unsigned alphabet, uint64_t seed)
{
    HostRng rng(seed);
    std::vector<uint8_t> v(n);
    for (auto &b : v)
        b = static_cast<uint8_t>(rng.bounded(alphabet ? alphabet : 256));
    return v;
}

std::vector<double>
randomDoubles(size_t n, double lo, double hi, uint64_t seed)
{
    HostRng rng(seed);
    std::vector<double> v(n);
    for (auto &d : v)
        d = lo + (hi - lo) * rng.unit();
    return v;
}

std::vector<uint64_t>
randomCycle(size_t n, uint64_t seed)
{
    // Sattolo's algorithm: a uniform random permutation that is a single
    // n-cycle, so a pointer chase visits every node before repeating.
    std::vector<uint64_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    HostRng rng(seed);
    for (size_t i = n - 1; i > 0; --i) {
        const size_t j = rng.bounded(i);
        std::swap(perm[i], perm[j]);
    }
    return perm;
}

} // namespace mica::workloads::kernels
