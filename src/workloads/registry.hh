/**
 * @file
 * The 122-benchmark registry mirroring Table I of the paper.
 */

#pragma once

#include <string>
#include <utility>
#include <vector>

#include "workloads/benchmark.hh"

namespace mica::workloads
{

/**
 * Immutable catalog of the 122 (suite, program, input) rows of Table I,
 * each bound to a parameterized kernel builder. The singleton is built
 * once on first use; Program construction stays deferred until build()
 * is invoked on an entry.
 */
class BenchmarkRegistry
{
  public:
    /** @return the process-wide registry. */
    static const BenchmarkRegistry &instance();

    /** @return all entries in Table I order. */
    const std::vector<BenchmarkEntry> &all() const { return entries_; }

    /** @return number of registered benchmarks (122). */
    size_t size() const { return entries_.size(); }

    /** @return entries of one suite, in table order. */
    std::vector<const BenchmarkEntry *>
    bySuite(const std::string &suite) const;

    /** @return entry with the given "suite/program.input" name. */
    const BenchmarkEntry *find(const std::string &fullName) const;

    /** @return Table I position of a name, or npos when unknown. */
    size_t indexOf(const std::string &fullName) const;

    /** @return the distinct suite names, in first-appearance order. */
    std::vector<std::string> suites() const;

  private:
    BenchmarkRegistry();

    std::vector<BenchmarkEntry> entries_;
};

/**
 * Surface a directory of recorded traces as first-class benchmarks.
 *
 * Every "*.trace" (binary, see trace/trace_file.hh) and "*.csv"/
 * "*.txt" (hand-made text trace) file in @p dir becomes one entry
 * whose source factory replays the file; the filename stem maps back
 * to the benchmark identity by replacing the first "__" with "/"
 * ("SPEC2000__gzip.graphic.trace" -> "SPEC2000/gzip.graphic", the
 * inverse of what `mica trace record` writes). Stems without "__"
 * land in the synthetic "traces" suite. Entries are ordered by Table
 * I position (unknown names after, sorted by name), so replaying a
 * recorded registry sweep reproduces the interpreter sweep's report
 * ordering byte for byte.
 *
 * Binary files are validated eagerly (header + chunk chain +
 * payload checksum), so a corrupt or version-mismatched trace
 * rejects at scan time with a TraceFileError instead of failing
 * mid-sweep — and never silently falls back to interpreting the
 * registry kernel. The source factories reuse that validation
 * (header-only re-check per open, no second payload pass). Two
 * files mapping to the same benchmark name reject too.
 *
 * @param dir directory holding the trace files
 * @param streamReader replay via FileTraceSource instead of the
 *        default MappedTraceSource (profiles are byte-identical
 *        either way)
 * @param maxInsts the profiling budget the entries will run under:
 *        a binary trace holding fewer records than a nonzero budget
 *        rejects, because replay would silently produce a shorter
 *        stream than interpreting the program directly (0 = replay
 *        whatever was recorded)
 * @param contentStamp when non-null, receives a digest of every
 *        file's identity and content (names, record counts, payload
 *        checksums; raw bytes for text traces) so callers can key
 *        caches on what the traces *hold*, not just the directory
 *        path — quarantined files are excluded from the digest, so a
 *        directory with a corrupt file keys differently from the
 *        same directory healthy
 * @param quarantined when non-null, a file that fails validation (or
 *        the budget guard) is recorded here as {path, error} and
 *        skipped instead of throwing; directory-level problems (not
 *        a directory, duplicate benchmark names) still throw. Order
 *        follows the directory scan, which is filesystem-dependent —
 *        callers wanting a deterministic report should sort.
 * @throws TraceFileError when @p dir is not a directory or (with
 *         @p quarantined null) a trace file in it fails validation
 */
std::vector<BenchmarkEntry>
traceBenchmarks(const std::string &dir, bool streamReader = false,
                uint64_t maxInsts = 0, uint64_t *contentStamp = nullptr,
                std::vector<std::pair<std::string, std::string>>
                    *quarantined = nullptr);

/**
 * As traceBenchmarks, but over an explicit file list instead of a
 * directory scan — the corpus layer hands one shard's files through
 * here. Semantics (validation, budget guard, quarantine, content
 * stamp, registry-order sort, duplicate-name rejection) are identical;
 * @p what names the trace set in set-level error messages (duplicate
 * benchmark names). Files with unknown extensions are skipped.
 */
std::vector<BenchmarkEntry>
traceBenchmarksFromFiles(const std::vector<std::string> &files,
                         bool streamReader = false,
                         uint64_t maxInsts = 0,
                         uint64_t *contentStamp = nullptr,
                         std::vector<std::pair<std::string, std::string>>
                             *quarantined = nullptr,
                         const std::string &what = "trace set");

} // namespace mica::workloads
