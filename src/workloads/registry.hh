/**
 * @file
 * The 122-benchmark registry mirroring Table I of the paper.
 */

#pragma once

#include <string>
#include <vector>

#include "workloads/benchmark.hh"

namespace mica::workloads
{

/**
 * Immutable catalog of the 122 (suite, program, input) rows of Table I,
 * each bound to a parameterized kernel builder. The singleton is built
 * once on first use; Program construction stays deferred until build()
 * is invoked on an entry.
 */
class BenchmarkRegistry
{
  public:
    /** @return the process-wide registry. */
    static const BenchmarkRegistry &instance();

    /** @return all entries in Table I order. */
    const std::vector<BenchmarkEntry> &all() const { return entries_; }

    /** @return number of registered benchmarks (122). */
    size_t size() const { return entries_.size(); }

    /** @return entries of one suite, in table order. */
    std::vector<const BenchmarkEntry *>
    bySuite(const std::string &suite) const;

    /** @return entry with the given "suite/program.input" name. */
    const BenchmarkEntry *find(const std::string &fullName) const;

    /** @return the distinct suite names, in first-appearance order. */
    std::vector<std::string> suites() const;

  private:
    BenchmarkRegistry();

    std::vector<BenchmarkEntry> entries_;
};

} // namespace mica::workloads
