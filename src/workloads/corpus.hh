/**
 * @file
 * Sharded trace-corpus manifests: out-of-core profiling input.
 *
 * A corpus is a directory tree of recorded trace files plus a
 * `corpus.json` manifest that carves the files into named shards. The
 * manifest is the unit of planning — it is written once by `mica
 * corpus init` and read by every later sweep — and the shard is the
 * unit of execution and resume: the pipeline profiles one shard at a
 * time (peak memory is bounded by the largest shard, not the corpus),
 * marks each completed shard with a digest-stamped done marker, and a
 * killed sweep restarts only the shards without a valid marker.
 *
 * Manifest schema (canonical JSON, service/json.hh):
 *
 *   {"schema":"mica-corpus/1",
 *    "shards":[{"name":"shard-000",
 *               "traces":[{"file":"SPEC2000__bzip2.source.trace",
 *                          "format":2,
 *                          "records":200000,
 *                          "bytes":1183283,
 *                          "digest":"0x1f2e..."}, ...]}, ...]}
 *
 * File paths are relative to the manifest's directory, so a corpus
 * tree can be moved or mounted elsewhere without re-initializing.
 * Scanning is deterministic: files sort lexicographically by relative
 * path and shards are contiguous blocks of that order, so the same
 * tree always produces the same manifest. Every trace is probed at
 * scan time (full validation, see trace/trace_file.hh) and its
 * content digest lands in the manifest — the same digest formula the
 * trace-directory benchmarks use — so a re-recorded or corrupted file
 * is detected by comparing digests, not timestamps.
 */

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace mica::workloads
{

/** Corpus-layer failures: bad manifests, bad trees, bad arguments. */
class CorpusError : public std::runtime_error
{
  public:
    CorpusError(const std::string &path, const std::string &reason)
        : std::runtime_error("corpus " + path + ": " + reason)
    {}
};

/** One trace file as recorded in the manifest. */
struct CorpusTrace
{
    std::string file;       ///< path relative to the corpus root
    uint32_t format = 0;    ///< trace format version (0 = text trace)
    uint64_t records = 0;   ///< dynamic instruction records
    uint64_t bytes = 0;     ///< file size on disk
    uint64_t digest = 0;    ///< content digest (count + payload hash)
};

/** A named contiguous block of corpus traces. */
struct CorpusShard
{
    std::string name;
    std::vector<CorpusTrace> traces;

    /** @return total records across the shard's traces. */
    uint64_t records() const;

    /** @return total on-disk bytes across the shard's traces. */
    uint64_t bytes() const;

    /**
     * @return a digest of the shard's identity and contents (names +
     * per-file digests, order-sensitive). Done markers carry it, so
     * resume only trusts a marker written for exactly these bytes.
     */
    uint64_t digest() const;
};

/** The parsed (or freshly scanned) corpus manifest. */
struct CorpusManifest
{
    static constexpr const char *kSchema = "mica-corpus/1";
    static constexpr const char *kFileName = "corpus.json";

    std::string root;   ///< directory holding corpus.json
    std::vector<CorpusShard> shards;

    /** @return total trace files across all shards. */
    size_t traceCount() const;

    /** @return total records across all shards. */
    uint64_t records() const;

    /** @return total on-disk bytes across all shards. */
    uint64_t bytes() const;

    /** @return shard index by name, or npos. */
    size_t shardIndex(const std::string &name) const;

    /** @return absolute paths of one shard's trace files. */
    std::vector<std::string> shardFiles(size_t shard) const;

    /** @return the manifest as canonical JSON. */
    std::string dump() const;
};

/**
 * Walk the directory tree under @p dir, probe every trace file
 * (*.trace binary, *.csv / *.txt text), and carve the sorted file
 * list into shards of at most @p shardSize traces.
 *
 * @throws CorpusError when @p dir is not a directory, holds no trace
 *         files, or @p shardSize is 0; TraceFileError when any trace
 *         fails validation (an unreadable corpus must be fixed or
 *         pruned before it is sharded, not silently skipped).
 */
CorpusManifest scanCorpus(const std::string &dir, size_t shardSize);

/** Write @p m to <root>/corpus.json atomically (.tmp + rename). */
void saveCorpus(const CorpusManifest &m);

/**
 * Read and validate <dir>/corpus.json.
 * @throws CorpusError naming the file and the violated invariant
 *         (schema mismatch, duplicate shard names, empty shards,
 *         malformed entries).
 */
CorpusManifest loadCorpus(const std::string &dir);

} // namespace mica::workloads
