/**
 * @file
 * Parameterized mini-ISA kernel builders for the 122-benchmark table.
 *
 * Every (suite, program, input) row of the paper's Table I is substituted
 * by one of these kernels, instantiated with parameters that place it in
 * the right region of the 47-characteristic space: instruction mix,
 * inherent ILP (dependence-chain shape), working-set size, local/global
 * stride structure, and branch predictability are all controlled by the
 * parameters. See DESIGN.md section 2 for the substitution argument and
 * registry.cc for the per-benchmark parameter choices.
 *
 * Builders are grouped by the suite file that implements them; several
 * families are shared across suites (e.g. the DCT kernel backs the jpeg
 * codecs of CommBench, MediaBench and MiBench alike).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "isa/program.hh"

namespace mica::workloads::kernels
{

// ----------------------------------------------------------------------
// Deterministic data-generation helpers (host side).
// ----------------------------------------------------------------------

/** xorshift64* PRNG for building initialized data segments. */
class HostRng
{
  public:
    explicit HostRng(uint64_t seed)
        : state_(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    uint64_t
    next()
    {
        state_ ^= state_ >> 12;
        state_ ^= state_ << 25;
        state_ ^= state_ >> 27;
        return state_ * 0x2545f4914f6cdd1dull;
    }

    /** @return uniform value in [0, n). */
    uint64_t bounded(uint64_t n) { return n ? next() % n : 0; }

    /** @return uniform double in [0, 1). */
    double
    unit()
    {
        return static_cast<double>(next() >> 11) *
               (1.0 / 9007199254740992.0);
    }

  private:
    uint64_t state_;
};

/** @return n random bytes, each uniform in [0, alphabet). */
std::vector<uint8_t> randomBytes(size_t n, unsigned alphabet,
                                 uint64_t seed);

/** @return n random doubles in [lo, hi). */
std::vector<double> randomDoubles(size_t n, double lo, double hi,
                                  uint64_t seed);

/** @return a random permutation of 0..n-1 forming a single cycle. */
std::vector<uint64_t> randomCycle(size_t n, uint64_t seed);

// ----------------------------------------------------------------------
// Bioinformatics kernels (kernels_bio.cc).
// ----------------------------------------------------------------------

/** Banded Smith-Waterman style dynamic programming over two sequences. */
struct DpMatrixParams
{
    size_t queryLen = 256;      ///< rows of the DP matrix
    size_t dbLen = 1024;        ///< columns (database sequence)
    unsigned alphabet = 4;      ///< residue alphabet size
    unsigned iters = 2;         ///< whole-matrix repetitions
    uint64_t seed = 1;
    int matchScore = 2;
    int mismatchPenalty = -1;
    int gapPenalty = -2;
};

isa::Program dpMatrix(const DpMatrixParams &p);

/**
 * Seed-and-extend database scan against a large k-mer hash index:
 * rolling hash over a byte stream with random probes into a big table
 * (the blast substitute: its defining trait is the huge data working
 * set the index probes touch).
 */
struct KmerScanParams
{
    size_t dbBytes = 1 << 16;       ///< database stream length
    size_t tableBytes = 1 << 22;    ///< k-mer index size (pow2)
    size_t queryBytes = 64;         ///< extension target
    unsigned extendThresholdBits = 5;   ///< hash bits gating extension
    unsigned iters = 1;
    uint64_t seed = 2;
};

isa::Program kmerScan(const KmerScanParams &p);

/** Profile-HMM Viterbi recurrence (floating point, three DP bands). */
struct HmmViterbiParams
{
    size_t states = 64;
    size_t seqLen = 512;
    unsigned alphabet = 20;
    unsigned iters = 2;
    uint64_t seed = 3;
    bool trainingPass = false;  ///< add a count-update store pass
};

isa::Program hmmViterbi(const HmmViterbiParams &p);

/** Phylogenetic tree evaluation: likelihood (FP) or parsimony (int). */
struct PhyloParams
{
    size_t taxa = 16;           ///< leaves; internal nodes = taxa - 1
    size_t sites = 256;         ///< alignment columns
    unsigned iters = 3;
    uint64_t seed = 4;
    bool parsimony = false;     ///< integer Fitch counts instead of FP
};

isa::Program phyloKernel(const PhyloParams &p);

// ----------------------------------------------------------------------
// Biometrics kernels (kernels_biometrics.cc).
// ----------------------------------------------------------------------

/** Dense matrix-vector products (subspace projection). */
struct MatVecParams
{
    size_t rows = 128;
    size_t cols = 128;
    unsigned iters = 4;
    uint64_t seed = 5;
    unsigned unroll = 4;        ///< accumulators in the dot product
};

isa::Program matVec(const MatVecParams &p);

/** Triangular covariance accumulation from sample vectors. */
struct CovarianceParams
{
    size_t dim = 64;
    size_t samples = 32;
    unsigned iters = 2;
    uint64_t seed = 6;
};

isa::Program covarianceUpdate(const CovarianceParams &p);

/** Streaming byte-image to float normalization. */
struct ImageNormalizeParams
{
    size_t pixels = 1 << 14;
    unsigned iters = 4;
    uint64_t seed = 7;
};

isa::Program imageNormalize(const ImageNormalizeParams &p);

/** Gaussian-mixture scoring of feature frames (speech decode). */
struct GmmDecodeParams
{
    size_t frames = 64;
    size_t mixtures = 16;
    size_t dim = 24;
    unsigned iters = 2;
    uint64_t seed = 8;
};

isa::Program gmmDecode(const GmmDecodeParams &p);

/** Blocked dense matrix-matrix multiply (subspace training). */
struct MatMulParams
{
    size_t n = 64;              ///< square matrix dimension
    unsigned iters = 1;
    uint64_t seed = 9;
};

isa::Program denseMatMul(const MatMulParams &p);

// ----------------------------------------------------------------------
// Telecom kernels (kernels_comm.cc).
// ----------------------------------------------------------------------

/** Feistel block cipher with S-box lookups over a buffer. */
struct BlockCipherParams
{
    size_t bufBytes = 1 << 12;
    unsigned rounds = 16;
    unsigned iters = 4;
    uint64_t seed = 10;
    bool decrypt = false;
};

isa::Program blockCipher(const BlockCipherParams &p);

/** Deficit-round-robin scheduling over linked packet queues. */
struct QueueSchedParams
{
    size_t numQueues = 16;
    size_t pktsPerQueue = 32;
    unsigned quantum = 512;
    unsigned iters = 6;
    uint64_t seed = 11;
};

isa::Program queueScheduler(const QueueSchedParams &p);

/** IP fragmentation: word-copy payload slices plus header writes. */
struct PacketFragParams
{
    size_t pktBytes = 4096;
    size_t mtu = 576;
    unsigned iters = 8;
    uint64_t seed = 12;
};

isa::Program packetFrag(const PacketFragParams &p);

/** 8x8 integer DCT/IDCT with quantization over image blocks. */
struct DctParams
{
    size_t blocks = 64;
    unsigned iters = 3;
    uint64_t seed = 13;
    bool inverse = false;
};

isa::Program dct8x8(const DctParams &p);

/** Reed-Solomon GF(256) encode/decode via log/exp tables. */
struct ReedSolomonParams
{
    size_t dataBytes = 1 << 12;
    size_t parityBytes = 16;
    unsigned iters = 3;
    uint64_t seed = 14;
    bool decode = false;        ///< syndrome evaluation instead of encode
};

isa::Program gfReedSolomon(const ReedSolomonParams &p);

/** Bitwise radix-trie lookups (route lookup / patricia). */
struct TrieLookupParams
{
    size_t numKeys = 1024;
    size_t trieNodes = 4096;
    unsigned maxDepth = 24;
    unsigned iters = 4;
    uint64_t seed = 15;
};

isa::Program trieLookup(const TrieLookupParams &p);

/** Ones-complement checksum plus header field rewrites. */
struct ChecksumParams
{
    size_t pktBytes = 1500;
    size_t numPkts = 48;
    unsigned iters = 3;
    uint64_t seed = 16;
};

isa::Program checksum(const ChecksumParams &p);

/** LZ77 hash-chain compression / decompression. */
struct Lz77Params
{
    size_t bufBytes = 1 << 14;
    size_t windowBytes = 1 << 12;
    unsigned alphabet = 32;     ///< source entropy: small = compressible
    unsigned iters = 2;
    uint64_t seed = 17;
    bool decode = false;
};

isa::Program lz77(const Lz77Params &p);

// ----------------------------------------------------------------------
// Media kernels (kernels_media.cc).
// ----------------------------------------------------------------------

/** 1D lifting wavelet transform passes (epic/unepic). */
struct WaveletParams
{
    size_t n = 1 << 12;         ///< samples (power of two)
    unsigned levels = 6;
    unsigned iters = 3;
    uint64_t seed = 18;
    bool inverse = false;
};

isa::Program waveletTransform(const WaveletParams &p);

/** ADPCM sample codec: serial predictor state per sample. */
struct AdpcmParams
{
    size_t samples = 1 << 13;
    unsigned iters = 3;
    uint64_t seed = 19;
    bool decode = false;
    bool g721 = false;          ///< wider tables, extra smoothing pass
};

isa::Program adpcmCodec(const AdpcmParams &p);

/** Bytecode-interpreter dispatch loop (compare-tree switch). */
struct InterpParams
{
    size_t codeLen = 4096;      ///< bytecode length
    unsigned numOps = 32;       ///< distinct opcodes / handlers
    unsigned handlerBody = 6;   ///< ALU ops per handler
    double hotOpFraction = 0.0; ///< skew: fraction of stream using op 0
    unsigned iters = 3;
    uint64_t seed = 20;
};

isa::Program interpDispatch(const InterpParams &p);

/** Perspective texture mapping: interpolate, fetch texel, blend. */
struct TexMapParams
{
    size_t texBytes = 1 << 16;  ///< texture footprint (power of two)
    size_t pixels = 1 << 12;
    unsigned iters = 3;
    uint64_t seed = 21;
};

isa::Program texMap(const TexMapParams &p);

/** Block motion estimation / compensation over two frames. */
struct MotionParams
{
    size_t frameW = 128;
    size_t frameH = 64;
    unsigned searchRange = 4;   ///< +/- candidate offsets per block
    unsigned iters = 1;
    uint64_t seed = 22;
    bool encode = true;         ///< SAD search; else compensation copy
};

isa::Program motionComp(const MotionParams &p);

// ----------------------------------------------------------------------
// Embedded kernels (kernels_embedded.cc).
// ----------------------------------------------------------------------

/** Table-driven CRC-32 over a buffer. */
struct Crc32Params
{
    size_t bufBytes = 1 << 14;
    unsigned iters = 4;
    uint64_t seed = 23;
};

isa::Program crc32(const Crc32Params &p);

/** Iterative radix-2 FFT butterflies with bit-reversal permutation. */
struct FftParams
{
    size_t n = 1 << 10;         ///< complex points (power of two)
    unsigned iters = 2;
    uint64_t seed = 24;
    bool inverse = false;
};

isa::Program fftButterfly(const FftParams &p);

/** Scalar math: cubic roots and integer square roots (serial FP). */
struct BasicMathParams
{
    size_t problems = 2048;
    unsigned iters = 2;
    uint64_t seed = 25;
};

isa::Program basicMath(const BasicMathParams &p);

/** Bit-twiddling suite: population counts and bitboard logic. */
struct BitOpsParams
{
    size_t words = 4096;
    unsigned iters = 4;
    uint64_t seed = 26;
    bool chess = false;         ///< add attack-mask table lookups
};

isa::Program bitOps(const BitOpsParams &p);

/** Array-scan Dijkstra relaxation over an adjacency matrix graph. */
struct GraphParams
{
    size_t nodes = 128;
    unsigned degree = 8;
    unsigned iters = 2;
    uint64_t seed = 27;
};

isa::Program graphSssp(const GraphParams &p);

/** Hash-table word lookup with chained string compares. */
struct HashDictParams
{
    size_t numWords = 2048;     ///< dictionary entries
    size_t numQueries = 2048;
    size_t tableSlots = 4096;   ///< power of two
    unsigned iters = 2;
    uint64_t seed = 28;
};

isa::Program hashDict(const HashDictParams &p);

/** Iterative quicksort with an explicit stack. */
struct QuickSortParams
{
    size_t elems = 4096;
    unsigned iters = 2;
    uint64_t seed = 29;
};

isa::Program quickSort(const QuickSortParams &p);

/** 2D image filters: smoothing, thresholding, dithering, median... */
struct ImageFilterParams
{
    enum class Variant
    {
        Smooth,     ///< 3x3 box filter
        Threshold,  ///< USAN-style thresholded accumulation
        Gray,       ///< weighted RGB to gray conversion
        Rgba,       ///< gray to RGBA expansion (store heavy)
        Dither,     ///< error-diffusion (serial dependence)
        Median,     ///< 3x3 median via compare/swap network
    };

    size_t width = 128;
    size_t height = 96;
    Variant variant = Variant::Smooth;
    unsigned iters = 2;
    uint64_t seed = 30;
};

isa::Program imageFilter2D(const ImageFilterParams &p);

/** Cascaded IIR/formant audio synthesis and MDCT-style passes. */
struct AudioSynthParams
{
    size_t samples = 1 << 12;
    unsigned stages = 4;        ///< biquad sections in series
    unsigned iters = 2;
    uint64_t seed = 31;
    bool withTables = false;    ///< add coefficient table lookups
};

isa::Program audioSynth(const AudioSynthParams &p);

/** SHA-1 style message schedule and round function. */
struct ShaParams
{
    size_t bufBytes = 1 << 13;
    unsigned iters = 3;
    uint64_t seed = 32;
};

isa::Program shaHash(const ShaParams &p);

/** Multi-word integer arithmetic: carry chains and schoolbook mul. */
struct BigIntParams
{
    size_t words = 32;          ///< 64-bit limbs per operand
    unsigned iters = 24;
    uint64_t seed = 33;
};

isa::Program bigIntArith(const BigIntParams &p);

// ----------------------------------------------------------------------
// General-purpose kernels (kernels_spec.cc).
// ----------------------------------------------------------------------

/** Random-cycle pointer chasing with payload updates (mcf). */
struct PointerChaseParams
{
    size_t nodes = 1 << 16;     ///< 64-byte nodes
    unsigned iters = 1;
    uint64_t seed = 34;
    size_t steps = 1 << 15;     ///< chase steps per iteration
};

isa::Program pointerChase(const PointerChaseParams &p);

/** Streaming neural-network layer scan with vigilance test (art). */
struct NeuralScanParams
{
    size_t inputs = 1 << 12;
    size_t neurons = 16;
    unsigned iters = 2;
    uint64_t seed = 35;
};

isa::Program neuralScan(const NeuralScanParams &p);

/** Structured-grid stencil sweeps, optionally with sparse indices. */
struct StencilParams
{
    size_t nx = 128;
    size_t ny = 128;
    unsigned points = 5;        ///< 5-point or 9-point
    unsigned passes = 2;
    unsigned iters = 1;
    uint64_t seed = 36;
    bool sparse = false;        ///< index-array indirection (equake/fem)
};

isa::Program stencilSweep(const StencilParams &p);

/** Ray-sphere intersection loops (eon). */
struct RayTraceParams
{
    size_t spheres = 32;
    size_t rays = 512;
    unsigned iters = 2;
    uint64_t seed = 37;
};

isa::Program rayTrace(const RayTraceParams &p);

/** Simulated-annealing placement moves (twolf / vpr place). */
struct AnnealParams
{
    size_t cells = 4096;
    size_t moves = 1 << 13;
    unsigned iters = 1;
    uint64_t seed = 38;
};

isa::Program annealPlace(const AnnealParams &p);

/** Object-database traversal through subroutine-per-operation code. */
struct ObjDbParams
{
    size_t objects = 4096;
    size_t opsPerObject = 2;
    size_t traversals = 4096;
    unsigned iters = 1;
    uint64_t seed = 39;
};

isa::Program objDb(const ObjDbParams &p);

/** Block-sort compression front end: partitioned byte-suffix sorting. */
struct BwtSortParams
{
    size_t blockBytes = 1 << 13;
    unsigned alphabet = 64;     ///< source entropy
    unsigned iters = 1;
    uint64_t seed = 40;
};

isa::Program bwtSort(const BwtSortParams &p);

} // namespace mica::workloads::kernels
