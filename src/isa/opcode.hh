/**
 * @file
 * Opcode set of the mini-RISC ISA used as the instrumentation substrate.
 *
 * The paper profiles Alpha binaries through ATOM. This repo substitutes a
 * small register-based RISC ISA whose interpreter emits the same per-
 * instruction observation stream (see trace/inst_record.hh). The opcode
 * set is deliberately minimal but complete enough to express the workload
 * kernels: integer ALU, integer multiply/divide, IEEE double arithmetic,
 * byte- to quad-word loads/stores, and the usual control transfers.
 */

#pragma once

#include <cstdint>

#include "trace/inst_record.hh"

namespace mica::isa
{

enum class Opcode : uint8_t
{
    // Integer register-register.
    Add, Sub, And, Or, Xor, Shl, Shr, Sar, Slt, Sltu,
    Mul, Div, Rem,
    // Integer register-immediate.
    Addi, Andi, Ori, Xori, Shli, Shri, Sari, Slti, Muli,
    // Load immediate (64-bit).
    Li,
    // Floating point (double precision).
    Fadd, Fsub, Fmul, Fdiv, Fmin, Fmax,
    Fneg, Fabs, Fsqrt, Fmov,
    Fclt, Fcle, Fceq,       ///< FP compare, integer destination
    Itof, Ftoi,             ///< conversions
    // Memory. Loads sign-extend except Lbu/Lhu/Lwu.
    Lb, Lbu, Lh, Lhu, Lw, Lwu, Ld,
    Sb, Sh, Sw, Sd,
    Fld, Fsd,               ///< double-precision load/store
    // Control transfers. Branch targets are label-resolved indices.
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    J, Jal, Jr, Jalr,
    // Misc.
    Nop, Halt,
};

/** Number of opcodes (for table sizing). */
constexpr int kNumOpcodes = static_cast<int>(Opcode::Halt) + 1;

/** @return the printable mnemonic for an opcode. */
const char *opcodeName(Opcode op);

/** @return the InstClass used by the analyzers for this opcode. */
InstClass opcodeClass(Opcode op);

/** @return true if the opcode reads/writes floating-point registers. */
bool opcodeIsFp(Opcode op);

/** @return access size in bytes for memory opcodes, 0 otherwise. */
uint8_t opcodeMemSize(Opcode op);

} // namespace mica::isa
