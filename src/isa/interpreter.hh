/**
 * @file
 * Trace-emitting interpreter for the mini-ISA.
 */

#pragma once

#include <array>
#include <cstdint>

#include "isa/memory.hh"
#include "isa/program.hh"
#include "trace/trace_source.hh"

namespace mica::isa
{

/**
 * Executes a Program one instruction per next() call, emitting an
 * InstRecord for each architecturally executed instruction. This plays
 * the role ATOM plays in the paper: the functional execution engine that
 * the characterization analyzers observe.
 *
 * Execution terminates when (i) a Halt instruction is reached, (ii) a
 * return transfers to the halt sentinel address (top-level `ret`), or
 * (iii) the PC runs off the end of the code. The interpreter is fully
 * deterministic and supports reset() for multi-pass analysis.
 */
class Interpreter : public TraceSource
{
  public:
    explicit Interpreter(const Program &prog) : prog_(&prog) { doReset(); }

    bool next(InstRecord &rec) override;

    size_t
    nextBatch(InstRecord *buf, size_t n) override
    {
        // Qualified call: no per-record virtual dispatch.
        size_t got = 0;
        while (got < n && Interpreter::next(buf[got]))
            ++got;
        return got;
    }

    bool
    reset() override
    {
        doReset();
        return true;
    }

    /** @return value of integer register i. */
    int64_t reg(unsigned i) const { return regs_[i]; }

    /** @return value of FP register i. */
    double freg(unsigned i) const { return fregs_[i]; }

    /** Set integer register i (e.g., to pass arguments in tests). */
    void setReg(unsigned i, int64_t v) { if (i) regs_[i] = v; }

    /** Set FP register i. */
    void setFreg(unsigned i, double v) { fregs_[i] = v; }

    /** @return simulated memory (for test inspection). */
    Memory &memory() { return mem_; }

    /** @return dynamic instructions executed so far. */
    uint64_t instCount() const { return icount_; }

    /** @return true once execution has terminated. */
    bool halted() const { return halted_; }

  private:
    void doReset();

    const Program *prog_;
    std::array<int64_t, 32> regs_ = {};
    std::array<double, 32> fregs_ = {};
    Memory mem_;
    uint64_t pcIdx_ = 0;
    uint64_t icount_ = 0;
    bool halted_ = false;
};

} // namespace mica::isa
