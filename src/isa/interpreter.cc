#include "isa/interpreter.hh"

#include <cmath>
#include <limits>

namespace mica::isa
{

namespace
{

/** Signed division with defined semantics for /0 and overflow. */
int64_t
safeDiv(int64_t a, int64_t b)
{
    if (b == 0)
        return 0;
    if (a == std::numeric_limits<int64_t>::min() && b == -1)
        return a;
    return a / b;
}

int64_t
safeRem(int64_t a, int64_t b)
{
    if (b == 0)
        return a;
    if (a == std::numeric_limits<int64_t>::min() && b == -1)
        return 0;
    return a % b;
}

int64_t
signExtend(uint64_t v, unsigned bytes)
{
    const unsigned shift = 64 - 8 * bytes;
    return static_cast<int64_t>(v << shift) >> shift;
}

constexpr uint16_t
fpId(uint8_t r)
{
    return kNumIntRegs + r;
}

} // namespace

void
Interpreter::doReset()
{
    regs_.fill(0);
    fregs_.fill(0.0);
    mem_.clear();
    for (const auto &seg : prog_->segments)
        mem_.loadSegment(seg);
    regs_[reg::Sp] = static_cast<int64_t>(Program::kStackTop);
    regs_[reg::Ra] = static_cast<int64_t>(Program::kHaltAddr);
    pcIdx_ = 0;
    icount_ = 0;
    halted_ = false;
}

bool
Interpreter::next(InstRecord &rec)
{
    if (halted_ || pcIdx_ >= prog_->code.size())
        return false;

    const Inst &in = prog_->code[pcIdx_];
    const Opcode op = in.op;

    rec = InstRecord{};
    rec.pc = prog_->pcOf(pcIdx_);
    rec.cls = opcodeClass(op);

    uint64_t next_idx = pcIdx_ + 1;

    auto wr = [this](uint8_t rd, int64_t v) {
        if (rd != reg::Zero)
            regs_[rd] = v;
    };
    auto src2 = [&rec](uint16_t a, uint16_t b) {
        rec.numSrcRegs = 2;
        rec.srcRegs[0] = a;
        rec.srcRegs[1] = b;
    };
    auto src1 = [&rec](uint16_t a) {
        rec.numSrcRegs = 1;
        rec.srcRegs[0] = a;
    };
    auto branch = [&](bool cond) {
        src2(in.rs1, in.rs2);
        rec.taken = cond;
        rec.target = prog_->pcOf(static_cast<uint64_t>(in.imm));
        if (cond)
            next_idx = static_cast<uint64_t>(in.imm);
    };

    const int64_t a = regs_[in.rs1];
    const int64_t b = regs_[in.rs2];
    const double fa = fregs_[in.rs1];
    const double fb = fregs_[in.rs2];

    switch (op) {
      case Opcode::Add: src2(in.rs1, in.rs2); rec.dstReg = in.rd;
        wr(in.rd, static_cast<int64_t>(
            static_cast<uint64_t>(a) + static_cast<uint64_t>(b)));
        break;
      case Opcode::Sub: src2(in.rs1, in.rs2); rec.dstReg = in.rd;
        wr(in.rd, static_cast<int64_t>(
            static_cast<uint64_t>(a) - static_cast<uint64_t>(b)));
        break;
      case Opcode::And: src2(in.rs1, in.rs2); rec.dstReg = in.rd;
        wr(in.rd, a & b);
        break;
      case Opcode::Or: src2(in.rs1, in.rs2); rec.dstReg = in.rd;
        wr(in.rd, a | b);
        break;
      case Opcode::Xor: src2(in.rs1, in.rs2); rec.dstReg = in.rd;
        wr(in.rd, a ^ b);
        break;
      case Opcode::Shl: src2(in.rs1, in.rs2); rec.dstReg = in.rd;
        wr(in.rd, static_cast<int64_t>(
            static_cast<uint64_t>(a) << (b & 63)));
        break;
      case Opcode::Shr: src2(in.rs1, in.rs2); rec.dstReg = in.rd;
        wr(in.rd, static_cast<int64_t>(
            static_cast<uint64_t>(a) >> (b & 63)));
        break;
      case Opcode::Sar: src2(in.rs1, in.rs2); rec.dstReg = in.rd;
        wr(in.rd, a >> (b & 63));
        break;
      case Opcode::Slt: src2(in.rs1, in.rs2); rec.dstReg = in.rd;
        wr(in.rd, a < b ? 1 : 0);
        break;
      case Opcode::Sltu: src2(in.rs1, in.rs2); rec.dstReg = in.rd;
        wr(in.rd,
           static_cast<uint64_t>(a) < static_cast<uint64_t>(b) ? 1 : 0);
        break;
      case Opcode::Mul: src2(in.rs1, in.rs2); rec.dstReg = in.rd;
        wr(in.rd, static_cast<int64_t>(
            static_cast<uint64_t>(a) * static_cast<uint64_t>(b)));
        break;
      case Opcode::Div: src2(in.rs1, in.rs2); rec.dstReg = in.rd;
        wr(in.rd, safeDiv(a, b));
        break;
      case Opcode::Rem: src2(in.rs1, in.rs2); rec.dstReg = in.rd;
        wr(in.rd, safeRem(a, b));
        break;

      case Opcode::Addi: src1(in.rs1); rec.dstReg = in.rd;
        wr(in.rd, static_cast<int64_t>(
            static_cast<uint64_t>(a) + static_cast<uint64_t>(in.imm)));
        break;
      case Opcode::Andi: src1(in.rs1); rec.dstReg = in.rd;
        wr(in.rd, a & in.imm);
        break;
      case Opcode::Ori: src1(in.rs1); rec.dstReg = in.rd;
        wr(in.rd, a | in.imm);
        break;
      case Opcode::Xori: src1(in.rs1); rec.dstReg = in.rd;
        wr(in.rd, a ^ in.imm);
        break;
      case Opcode::Shli: src1(in.rs1); rec.dstReg = in.rd;
        wr(in.rd, static_cast<int64_t>(
            static_cast<uint64_t>(a) << (in.imm & 63)));
        break;
      case Opcode::Shri: src1(in.rs1); rec.dstReg = in.rd;
        wr(in.rd, static_cast<int64_t>(
            static_cast<uint64_t>(a) >> (in.imm & 63)));
        break;
      case Opcode::Sari: src1(in.rs1); rec.dstReg = in.rd;
        wr(in.rd, a >> (in.imm & 63));
        break;
      case Opcode::Slti: src1(in.rs1); rec.dstReg = in.rd;
        wr(in.rd, a < in.imm ? 1 : 0);
        break;
      case Opcode::Muli: src1(in.rs1); rec.dstReg = in.rd;
        wr(in.rd, static_cast<int64_t>(
            static_cast<uint64_t>(a) * static_cast<uint64_t>(in.imm)));
        break;
      case Opcode::Li: rec.dstReg = in.rd;
        wr(in.rd, in.imm);
        break;

      case Opcode::Fadd: src2(fpId(in.rs1), fpId(in.rs2));
        rec.dstReg = fpId(in.rd);
        fregs_[in.rd] = fa + fb;
        break;
      case Opcode::Fsub: src2(fpId(in.rs1), fpId(in.rs2));
        rec.dstReg = fpId(in.rd);
        fregs_[in.rd] = fa - fb;
        break;
      case Opcode::Fmul: src2(fpId(in.rs1), fpId(in.rs2));
        rec.dstReg = fpId(in.rd);
        fregs_[in.rd] = fa * fb;
        break;
      case Opcode::Fdiv: src2(fpId(in.rs1), fpId(in.rs2));
        rec.dstReg = fpId(in.rd);
        fregs_[in.rd] = (fb == 0.0) ? 0.0 : fa / fb;
        break;
      case Opcode::Fmin: src2(fpId(in.rs1), fpId(in.rs2));
        rec.dstReg = fpId(in.rd);
        fregs_[in.rd] = fa < fb ? fa : fb;
        break;
      case Opcode::Fmax: src2(fpId(in.rs1), fpId(in.rs2));
        rec.dstReg = fpId(in.rd);
        fregs_[in.rd] = fa > fb ? fa : fb;
        break;
      case Opcode::Fneg: src1(fpId(in.rs1)); rec.dstReg = fpId(in.rd);
        fregs_[in.rd] = -fa;
        break;
      case Opcode::Fabs: src1(fpId(in.rs1)); rec.dstReg = fpId(in.rd);
        fregs_[in.rd] = std::fabs(fa);
        break;
      case Opcode::Fsqrt: src1(fpId(in.rs1)); rec.dstReg = fpId(in.rd);
        fregs_[in.rd] = std::sqrt(fa > 0.0 ? fa : 0.0);
        break;
      case Opcode::Fmov: src1(fpId(in.rs1)); rec.dstReg = fpId(in.rd);
        fregs_[in.rd] = fa;
        break;
      case Opcode::Fclt: src2(fpId(in.rs1), fpId(in.rs2));
        rec.dstReg = in.rd;
        wr(in.rd, fa < fb ? 1 : 0);
        break;
      case Opcode::Fcle: src2(fpId(in.rs1), fpId(in.rs2));
        rec.dstReg = in.rd;
        wr(in.rd, fa <= fb ? 1 : 0);
        break;
      case Opcode::Fceq: src2(fpId(in.rs1), fpId(in.rs2));
        rec.dstReg = in.rd;
        wr(in.rd, fa == fb ? 1 : 0);
        break;
      case Opcode::Itof: src1(in.rs1); rec.dstReg = fpId(in.rd);
        fregs_[in.rd] = static_cast<double>(a);
        break;
      case Opcode::Ftoi: src1(fpId(in.rs1)); rec.dstReg = in.rd;
        wr(in.rd, static_cast<int64_t>(fa));
        break;

      case Opcode::Lb:
      case Opcode::Lh:
      case Opcode::Lw: {
        src1(in.rs1); rec.dstReg = in.rd;
        const unsigned sz = opcodeMemSize(op);
        rec.memAddr = static_cast<uint64_t>(a + in.imm);
        rec.memSize = sz;
        wr(in.rd, signExtend(mem_.read(rec.memAddr, sz), sz));
        break;
      }
      case Opcode::Lbu:
      case Opcode::Lhu:
      case Opcode::Lwu:
      case Opcode::Ld: {
        src1(in.rs1); rec.dstReg = in.rd;
        const unsigned sz = opcodeMemSize(op);
        rec.memAddr = static_cast<uint64_t>(a + in.imm);
        rec.memSize = sz;
        wr(in.rd, static_cast<int64_t>(mem_.read(rec.memAddr, sz)));
        break;
      }
      case Opcode::Fld:
        src1(in.rs1); rec.dstReg = fpId(in.rd);
        rec.memAddr = static_cast<uint64_t>(a + in.imm);
        rec.memSize = 8;
        fregs_[in.rd] = mem_.readF64(rec.memAddr);
        break;

      case Opcode::Sb:
      case Opcode::Sh:
      case Opcode::Sw:
      case Opcode::Sd: {
        src2(in.rs2, in.rs1);  // value reg first, then address base
        const unsigned sz = opcodeMemSize(op);
        rec.memAddr = static_cast<uint64_t>(a + in.imm);
        rec.memSize = sz;
        mem_.write(rec.memAddr, sz, static_cast<uint64_t>(b));
        break;
      }
      case Opcode::Fsd:
        src2(fpId(in.rs2), in.rs1);
        rec.memAddr = static_cast<uint64_t>(a + in.imm);
        rec.memSize = 8;
        mem_.writeF64(rec.memAddr, fregs_[in.rs2]);
        break;

      case Opcode::Beq: branch(a == b); break;
      case Opcode::Bne: branch(a != b); break;
      case Opcode::Blt: branch(a < b); break;
      case Opcode::Bge: branch(a >= b); break;
      case Opcode::Bltu:
        branch(static_cast<uint64_t>(a) < static_cast<uint64_t>(b));
        break;
      case Opcode::Bgeu:
        branch(static_cast<uint64_t>(a) >= static_cast<uint64_t>(b));
        break;

      case Opcode::J:
        rec.taken = true;
        rec.target = prog_->pcOf(static_cast<uint64_t>(in.imm));
        next_idx = static_cast<uint64_t>(in.imm);
        break;
      case Opcode::Jal:
        rec.taken = true;
        rec.target = prog_->pcOf(static_cast<uint64_t>(in.imm));
        rec.dstReg = reg::Ra;
        regs_[reg::Ra] = static_cast<int64_t>(prog_->pcOf(pcIdx_ + 1));
        next_idx = static_cast<uint64_t>(in.imm);
        break;
      case Opcode::Jr: {
        src1(in.rs1);
        rec.taken = true;
        const uint64_t tgt = static_cast<uint64_t>(a);
        rec.target = tgt;
        if (tgt == Program::kHaltAddr)
            halted_ = true;
        else
            next_idx = prog_->idxOf(tgt);
        break;
      }
      case Opcode::Jalr: {
        src1(in.rs1);
        rec.taken = true;
        const uint64_t tgt = static_cast<uint64_t>(a);
        rec.target = tgt;
        rec.dstReg = reg::Ra;
        regs_[reg::Ra] = static_cast<int64_t>(prog_->pcOf(pcIdx_ + 1));
        if (tgt == Program::kHaltAddr)
            halted_ = true;
        else
            next_idx = prog_->idxOf(tgt);
        break;
      }

      case Opcode::Nop:
        break;
      case Opcode::Halt:
        halted_ = true;
        break;
    }

    pcIdx_ = next_idx;
    ++icount_;
    return true;
}

} // namespace mica::isa
