/**
 * @file
 * Programmatic assembler for the mini-ISA.
 *
 * Workload kernels are written against this builder: they emit
 * instructions through mnemonic methods, reference forward/backward labels
 * by name, and allocate initialized or zeroed data segments. finish()
 * resolves label fixups and returns an immutable Program.
 */

#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/program.hh"

namespace mica::isa
{

/**
 * Builder for Program objects. All label references may be forward;
 * unresolved labels cause finish() to throw.
 */
class Assembler
{
  public:
    explicit Assembler(std::string name = "") { prog_.name = std::move(name); }

    // ------------------------------------------------------------------
    // Labels.
    // ------------------------------------------------------------------

    /** Bind a label to the next emitted instruction. */
    void
    label(const std::string &name)
    {
        if (labels_.count(name))
            throw std::runtime_error("duplicate label: " + name);
        labels_[name] = prog_.code.size();
    }

    /** @return a unique label name with the given prefix. */
    std::string
    newLabel(const std::string &prefix = "L")
    {
        return prefix + "$" + std::to_string(nextLabel_++);
    }

    // ------------------------------------------------------------------
    // Integer register-register / register-immediate.
    // ------------------------------------------------------------------

    void add(uint8_t rd, uint8_t rs1, uint8_t rs2) { r3(Opcode::Add, rd, rs1, rs2); }
    void sub(uint8_t rd, uint8_t rs1, uint8_t rs2) { r3(Opcode::Sub, rd, rs1, rs2); }
    void and_(uint8_t rd, uint8_t rs1, uint8_t rs2) { r3(Opcode::And, rd, rs1, rs2); }
    void or_(uint8_t rd, uint8_t rs1, uint8_t rs2) { r3(Opcode::Or, rd, rs1, rs2); }
    void xor_(uint8_t rd, uint8_t rs1, uint8_t rs2) { r3(Opcode::Xor, rd, rs1, rs2); }
    void shl(uint8_t rd, uint8_t rs1, uint8_t rs2) { r3(Opcode::Shl, rd, rs1, rs2); }
    void shr(uint8_t rd, uint8_t rs1, uint8_t rs2) { r3(Opcode::Shr, rd, rs1, rs2); }
    void sar(uint8_t rd, uint8_t rs1, uint8_t rs2) { r3(Opcode::Sar, rd, rs1, rs2); }
    void slt(uint8_t rd, uint8_t rs1, uint8_t rs2) { r3(Opcode::Slt, rd, rs1, rs2); }
    void sltu(uint8_t rd, uint8_t rs1, uint8_t rs2) { r3(Opcode::Sltu, rd, rs1, rs2); }
    void mul(uint8_t rd, uint8_t rs1, uint8_t rs2) { r3(Opcode::Mul, rd, rs1, rs2); }
    void div(uint8_t rd, uint8_t rs1, uint8_t rs2) { r3(Opcode::Div, rd, rs1, rs2); }
    void rem(uint8_t rd, uint8_t rs1, uint8_t rs2) { r3(Opcode::Rem, rd, rs1, rs2); }

    void addi(uint8_t rd, uint8_t rs1, int64_t imm) { ri(Opcode::Addi, rd, rs1, imm); }
    void andi(uint8_t rd, uint8_t rs1, int64_t imm) { ri(Opcode::Andi, rd, rs1, imm); }
    void ori(uint8_t rd, uint8_t rs1, int64_t imm) { ri(Opcode::Ori, rd, rs1, imm); }
    void xori(uint8_t rd, uint8_t rs1, int64_t imm) { ri(Opcode::Xori, rd, rs1, imm); }
    void shli(uint8_t rd, uint8_t rs1, int64_t imm) { ri(Opcode::Shli, rd, rs1, imm); }
    void shri(uint8_t rd, uint8_t rs1, int64_t imm) { ri(Opcode::Shri, rd, rs1, imm); }
    void sari(uint8_t rd, uint8_t rs1, int64_t imm) { ri(Opcode::Sari, rd, rs1, imm); }
    void slti(uint8_t rd, uint8_t rs1, int64_t imm) { ri(Opcode::Slti, rd, rs1, imm); }
    void muli(uint8_t rd, uint8_t rs1, int64_t imm) { ri(Opcode::Muli, rd, rs1, imm); }

    /** Load a 64-bit immediate. */
    void
    li(uint8_t rd, int64_t imm)
    {
        Inst i;
        i.op = Opcode::Li;
        i.rd = rd;
        i.imm = imm;
        prog_.code.push_back(i);
    }

    /** Register move (pseudo-op for addi rd, rs, 0). */
    void mv(uint8_t rd, uint8_t rs) { addi(rd, rs, 0); }

    // ------------------------------------------------------------------
    // Floating point (register numbers index the FP file).
    // ------------------------------------------------------------------

    void fadd(uint8_t fd, uint8_t fs1, uint8_t fs2) { r3(Opcode::Fadd, fd, fs1, fs2); }
    void fsub(uint8_t fd, uint8_t fs1, uint8_t fs2) { r3(Opcode::Fsub, fd, fs1, fs2); }
    void fmul(uint8_t fd, uint8_t fs1, uint8_t fs2) { r3(Opcode::Fmul, fd, fs1, fs2); }
    void fdiv(uint8_t fd, uint8_t fs1, uint8_t fs2) { r3(Opcode::Fdiv, fd, fs1, fs2); }
    void fmin(uint8_t fd, uint8_t fs1, uint8_t fs2) { r3(Opcode::Fmin, fd, fs1, fs2); }
    void fmax(uint8_t fd, uint8_t fs1, uint8_t fs2) { r3(Opcode::Fmax, fd, fs1, fs2); }
    void fneg(uint8_t fd, uint8_t fs) { r3(Opcode::Fneg, fd, fs, 0); }
    void fabs_(uint8_t fd, uint8_t fs) { r3(Opcode::Fabs, fd, fs, 0); }
    void fsqrt(uint8_t fd, uint8_t fs) { r3(Opcode::Fsqrt, fd, fs, 0); }
    void fmov(uint8_t fd, uint8_t fs) { r3(Opcode::Fmov, fd, fs, 0); }
    void fclt(uint8_t rd, uint8_t fs1, uint8_t fs2) { r3(Opcode::Fclt, rd, fs1, fs2); }
    void fcle(uint8_t rd, uint8_t fs1, uint8_t fs2) { r3(Opcode::Fcle, rd, fs1, fs2); }
    void fceq(uint8_t rd, uint8_t fs1, uint8_t fs2) { r3(Opcode::Fceq, rd, fs1, fs2); }
    void itof(uint8_t fd, uint8_t rs) { r3(Opcode::Itof, fd, rs, 0); }
    void ftoi(uint8_t rd, uint8_t fs) { r3(Opcode::Ftoi, rd, fs, 0); }

    // ------------------------------------------------------------------
    // Memory. Effective address is reg[base] + off.
    // ------------------------------------------------------------------

    void lb(uint8_t rd, uint8_t base, int64_t off) { ri(Opcode::Lb, rd, base, off); }
    void lbu(uint8_t rd, uint8_t base, int64_t off) { ri(Opcode::Lbu, rd, base, off); }
    void lh(uint8_t rd, uint8_t base, int64_t off) { ri(Opcode::Lh, rd, base, off); }
    void lhu(uint8_t rd, uint8_t base, int64_t off) { ri(Opcode::Lhu, rd, base, off); }
    void lw(uint8_t rd, uint8_t base, int64_t off) { ri(Opcode::Lw, rd, base, off); }
    void lwu(uint8_t rd, uint8_t base, int64_t off) { ri(Opcode::Lwu, rd, base, off); }
    void ld(uint8_t rd, uint8_t base, int64_t off) { ri(Opcode::Ld, rd, base, off); }
    void fld(uint8_t fd, uint8_t base, int64_t off) { ri(Opcode::Fld, fd, base, off); }

    void sb(uint8_t val, uint8_t base, int64_t off) { st(Opcode::Sb, val, base, off); }
    void sh(uint8_t val, uint8_t base, int64_t off) { st(Opcode::Sh, val, base, off); }
    void sw(uint8_t val, uint8_t base, int64_t off) { st(Opcode::Sw, val, base, off); }
    void sd(uint8_t val, uint8_t base, int64_t off) { st(Opcode::Sd, val, base, off); }
    void fsd(uint8_t fval, uint8_t base, int64_t off) { st(Opcode::Fsd, fval, base, off); }

    // ------------------------------------------------------------------
    // Control transfers.
    // ------------------------------------------------------------------

    void beq(uint8_t a, uint8_t b, const std::string &l) { br(Opcode::Beq, a, b, l); }
    void bne(uint8_t a, uint8_t b, const std::string &l) { br(Opcode::Bne, a, b, l); }
    void blt(uint8_t a, uint8_t b, const std::string &l) { br(Opcode::Blt, a, b, l); }
    void bge(uint8_t a, uint8_t b, const std::string &l) { br(Opcode::Bge, a, b, l); }
    void bltu(uint8_t a, uint8_t b, const std::string &l) { br(Opcode::Bltu, a, b, l); }
    void bgeu(uint8_t a, uint8_t b, const std::string &l) { br(Opcode::Bgeu, a, b, l); }

    /** beq against the zero register. */
    void beqz(uint8_t a, const std::string &l) { beq(a, reg::Zero, l); }
    void bnez(uint8_t a, const std::string &l) { bne(a, reg::Zero, l); }

    void j(const std::string &l) { br(Opcode::J, 0, 0, l); }
    void jal(const std::string &l) { br(Opcode::Jal, 0, 0, l); }
    void call(const std::string &l) { jal(l); }

    void
    jr(uint8_t rs)
    {
        Inst i;
        i.op = Opcode::Jr;
        i.rs1 = rs;
        prog_.code.push_back(i);
    }

    void
    jalr(uint8_t rs)
    {
        Inst i;
        i.op = Opcode::Jalr;
        i.rs1 = rs;
        prog_.code.push_back(i);
    }

    void ret() { jr(reg::Ra); }

    void nop() { prog_.code.push_back(Inst{}); }

    void
    halt()
    {
        Inst i;
        i.op = Opcode::Halt;
        prog_.code.push_back(i);
    }

    // ------------------------------------------------------------------
    // Data segments. Return the base address of the allocation.
    // ------------------------------------------------------------------

    /** Allocate and initialize raw bytes. */
    uint64_t
    data(const void *p, size_t n, size_t align = 8)
    {
        uint64_t base = alignUp(dataCursor_, align);
        DataSegment seg;
        seg.base = base;
        seg.bytes.resize(n);
        std::memcpy(seg.bytes.data(), p, n);
        prog_.segments.push_back(std::move(seg));
        dataCursor_ = base + n;
        return base;
    }

    uint64_t
    dataU8(const std::vector<uint8_t> &v, size_t align = 8)
    {
        return data(v.data(), v.size(), align);
    }

    uint64_t
    dataU32(const std::vector<uint32_t> &v, size_t align = 8)
    {
        return data(v.data(), v.size() * 4, align);
    }

    uint64_t
    dataU64(const std::vector<uint64_t> &v, size_t align = 8)
    {
        return data(v.data(), v.size() * 8, align);
    }

    uint64_t
    dataF64(const std::vector<double> &v, size_t align = 8)
    {
        return data(v.data(), v.size() * 8, align);
    }

    /** Allocate zero-initialized space. */
    uint64_t
    reserve(size_t bytes, size_t align = 8)
    {
        uint64_t base = alignUp(dataCursor_, align);
        DataSegment seg;
        seg.base = base;
        seg.bytes.assign(bytes, 0);
        prog_.segments.push_back(std::move(seg));
        dataCursor_ = base + bytes;
        return base;
    }

    /**
     * Allocate address space without materializing a data segment.
     * Unwritten simulated memory reads as zero, so this is equivalent to
     * reserve() for read-mostly tables but avoids copying megabytes into
     * the program image (used by kernels with multi-MB footprints).
     */
    uint64_t
    reserveLazy(size_t bytes, size_t align = 8)
    {
        uint64_t base = alignUp(dataCursor_, align);
        dataCursor_ = base + bytes;
        return base;
    }

    /** @return number of instructions emitted so far. */
    size_t codeSize() const { return prog_.code.size(); }

    /**
     * Resolve all fixups and return the assembled program.
     * @throws std::runtime_error on unresolved labels.
     */
    Program finish();

  private:
    static uint64_t
    alignUp(uint64_t v, uint64_t a)
    {
        return (v + a - 1) & ~(a - 1);
    }

    void
    r3(Opcode op, uint8_t rd, uint8_t rs1, uint8_t rs2)
    {
        Inst i;
        i.op = op;
        i.rd = rd;
        i.rs1 = rs1;
        i.rs2 = rs2;
        prog_.code.push_back(i);
    }

    void
    ri(Opcode op, uint8_t rd, uint8_t rs1, int64_t imm)
    {
        Inst i;
        i.op = op;
        i.rd = rd;
        i.rs1 = rs1;
        i.imm = imm;
        prog_.code.push_back(i);
    }

    void
    st(Opcode op, uint8_t val, uint8_t base, int64_t off)
    {
        Inst i;
        i.op = op;
        i.rs2 = val;   // value to store
        i.rs1 = base;  // address base
        i.imm = off;
        prog_.code.push_back(i);
    }

    void
    br(Opcode op, uint8_t a, uint8_t b, const std::string &l)
    {
        Inst i;
        i.op = op;
        i.rs1 = a;
        i.rs2 = b;
        fixups_.push_back({prog_.code.size(), l});
        prog_.code.push_back(i);
    }

    struct Fixup
    {
        size_t instIdx;
        std::string label;
    };

    Program prog_;
    std::unordered_map<std::string, uint64_t> labels_;
    std::vector<Fixup> fixups_;
    uint64_t dataCursor_ = Program::kDataBase;
    uint64_t nextLabel_ = 0;
};

} // namespace mica::isa
