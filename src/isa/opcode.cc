#include "isa/opcode.hh"

namespace mica::isa
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::Sar: return "sar";
      case Opcode::Slt: return "slt";
      case Opcode::Sltu: return "sltu";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Rem: return "rem";
      case Opcode::Addi: return "addi";
      case Opcode::Andi: return "andi";
      case Opcode::Ori: return "ori";
      case Opcode::Xori: return "xori";
      case Opcode::Shli: return "shli";
      case Opcode::Shri: return "shri";
      case Opcode::Sari: return "sari";
      case Opcode::Slti: return "slti";
      case Opcode::Muli: return "muli";
      case Opcode::Li: return "li";
      case Opcode::Fadd: return "fadd";
      case Opcode::Fsub: return "fsub";
      case Opcode::Fmul: return "fmul";
      case Opcode::Fdiv: return "fdiv";
      case Opcode::Fmin: return "fmin";
      case Opcode::Fmax: return "fmax";
      case Opcode::Fneg: return "fneg";
      case Opcode::Fabs: return "fabs";
      case Opcode::Fsqrt: return "fsqrt";
      case Opcode::Fmov: return "fmov";
      case Opcode::Fclt: return "fclt";
      case Opcode::Fcle: return "fcle";
      case Opcode::Fceq: return "fceq";
      case Opcode::Itof: return "itof";
      case Opcode::Ftoi: return "ftoi";
      case Opcode::Lb: return "lb";
      case Opcode::Lbu: return "lbu";
      case Opcode::Lh: return "lh";
      case Opcode::Lhu: return "lhu";
      case Opcode::Lw: return "lw";
      case Opcode::Lwu: return "lwu";
      case Opcode::Ld: return "ld";
      case Opcode::Sb: return "sb";
      case Opcode::Sh: return "sh";
      case Opcode::Sw: return "sw";
      case Opcode::Sd: return "sd";
      case Opcode::Fld: return "fld";
      case Opcode::Fsd: return "fsd";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Bltu: return "bltu";
      case Opcode::Bgeu: return "bgeu";
      case Opcode::J: return "j";
      case Opcode::Jal: return "jal";
      case Opcode::Jr: return "jr";
      case Opcode::Jalr: return "jalr";
      case Opcode::Nop: return "nop";
      case Opcode::Halt: return "halt";
    }
    return "?";
}

InstClass
opcodeClass(Opcode op)
{
    switch (op) {
      case Opcode::Mul:
      case Opcode::Muli:
        return InstClass::IntMul;
      case Opcode::Div:
      case Opcode::Rem:
        return InstClass::IntDiv;
      case Opcode::Fadd:
      case Opcode::Fsub:
      case Opcode::Fmin:
      case Opcode::Fmax:
      case Opcode::Fneg:
      case Opcode::Fabs:
      case Opcode::Fmov:
      case Opcode::Fclt:
      case Opcode::Fcle:
      case Opcode::Fceq:
      case Opcode::Itof:
      case Opcode::Ftoi:
        return InstClass::FpAlu;
      case Opcode::Fmul:
        return InstClass::FpMul;
      case Opcode::Fdiv:
      case Opcode::Fsqrt:
        return InstClass::FpDiv;
      case Opcode::Lb:
      case Opcode::Lbu:
      case Opcode::Lh:
      case Opcode::Lhu:
      case Opcode::Lw:
      case Opcode::Lwu:
      case Opcode::Ld:
      case Opcode::Fld:
        return InstClass::Load;
      case Opcode::Sb:
      case Opcode::Sh:
      case Opcode::Sw:
      case Opcode::Sd:
      case Opcode::Fsd:
        return InstClass::Store;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Bltu:
      case Opcode::Bgeu:
        return InstClass::Branch;
      case Opcode::J:
        return InstClass::Jump;
      case Opcode::Jal:
      case Opcode::Jalr:
        return InstClass::Call;
      case Opcode::Jr:
        return InstClass::Return;
      case Opcode::Nop:
      case Opcode::Halt:
        return InstClass::Nop;
      default:
        return InstClass::IntAlu;
    }
}

bool
opcodeIsFp(Opcode op)
{
    switch (op) {
      case Opcode::Fadd:
      case Opcode::Fsub:
      case Opcode::Fmul:
      case Opcode::Fdiv:
      case Opcode::Fmin:
      case Opcode::Fmax:
      case Opcode::Fneg:
      case Opcode::Fabs:
      case Opcode::Fsqrt:
      case Opcode::Fmov:
      case Opcode::Fclt:
      case Opcode::Fcle:
      case Opcode::Fceq:
      case Opcode::Itof:
      case Opcode::Ftoi:
      case Opcode::Fld:
      case Opcode::Fsd:
        return true;
      default:
        return false;
    }
}

uint8_t
opcodeMemSize(Opcode op)
{
    switch (op) {
      case Opcode::Lb:
      case Opcode::Lbu:
      case Opcode::Sb:
        return 1;
      case Opcode::Lh:
      case Opcode::Lhu:
      case Opcode::Sh:
        return 2;
      case Opcode::Lw:
      case Opcode::Lwu:
      case Opcode::Sw:
        return 4;
      case Opcode::Ld:
      case Opcode::Sd:
      case Opcode::Fld:
      case Opcode::Fsd:
        return 8;
      default:
        return 0;
    }
}

} // namespace mica::isa
