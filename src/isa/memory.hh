/**
 * @file
 * Sparse, page-granular simulated memory.
 */

#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>

#include "isa/program.hh"
#include "util/flat_hash.hh"

namespace mica::isa
{

/**
 * Byte-addressable sparse memory backed by demand-allocated 4 KB pages.
 * Unwritten memory reads as zero. A one-entry page cache accelerates the
 * common sequential access pattern of the interpreter.
 */
class Memory
{
  public:
    static constexpr unsigned kPageBits = 12;
    static constexpr uint64_t kPageSize = 1ull << kPageBits;
    static constexpr uint64_t kOffMask = kPageSize - 1;

    /** Copy a program data segment into memory. */
    void
    loadSegment(const DataSegment &seg)
    {
        for (size_t i = 0; i < seg.bytes.size(); ++i)
            write8(seg.base + i, seg.bytes[i]);
    }

    /** Read size bytes (1/2/4/8), little endian, zero extended. */
    uint64_t
    read(uint64_t addr, unsigned size)
    {
        if (((addr & kOffMask) + size) <= kPageSize) {
            uint8_t *p = pageFor(addr) + (addr & kOffMask);
            uint64_t v = 0;
            std::memcpy(&v, p, size);
            return v;
        }
        uint64_t v = 0;
        for (unsigned i = 0; i < size; ++i)
            v |= static_cast<uint64_t>(read8(addr + i)) << (8 * i);
        return v;
    }

    /** Write size bytes (1/2/4/8), little endian. */
    void
    write(uint64_t addr, unsigned size, uint64_t val)
    {
        if (((addr & kOffMask) + size) <= kPageSize) {
            uint8_t *p = pageFor(addr) + (addr & kOffMask);
            std::memcpy(p, &val, size);
            return;
        }
        for (unsigned i = 0; i < size; ++i)
            write8(addr + i, static_cast<uint8_t>(val >> (8 * i)));
    }

    uint8_t read8(uint64_t addr) { return pageFor(addr)[addr & kOffMask]; }

    void
    write8(uint64_t addr, uint8_t v)
    {
        pageFor(addr)[addr & kOffMask] = v;
    }

    double
    readF64(uint64_t addr)
    {
        uint64_t bits = read(addr, 8);
        double d;
        std::memcpy(&d, &bits, 8);
        return d;
    }

    void
    writeF64(uint64_t addr, double d)
    {
        uint64_t bits;
        std::memcpy(&bits, &d, 8);
        write(addr, 8, bits);
    }

    /** @return number of pages currently allocated. */
    size_t numPages() const { return pages_.size(); }

    /** Drop all contents. */
    void
    clear()
    {
        pages_.clear();
        lastPageNum_ = ~0ull;
        lastPage_ = nullptr;
    }

  private:
    uint8_t *
    pageFor(uint64_t addr)
    {
        const uint64_t pn = addr >> kPageBits;
        if (pn == lastPageNum_)
            return lastPage_;
        auto &slot = pages_[pn];
        if (!slot) {
            slot = std::make_unique<std::array<uint8_t, kPageSize>>();
            slot->fill(0);
        }
        lastPageNum_ = pn;
        lastPage_ = slot->data();
        return lastPage_;
    }

    // Flat-hash page table: page lookups on read/write misses of the
    // one-entry cache stay allocation-free and probe one cache line.
    // Page payloads are heap blocks, so rehashing moves only the
    // unique_ptrs and never invalidates lastPage_.
    util::FlatHashMap<uint64_t,
                      std::unique_ptr<std::array<uint8_t, kPageSize>>,
                      util::MulHash>
        pages_;
    uint64_t lastPageNum_ = ~0ull;
    uint8_t *lastPage_ = nullptr;
};

} // namespace mica::isa
