#include "isa/assembler.hh"

namespace mica::isa
{

Program
Assembler::finish()
{
    for (const auto &f : fixups_) {
        auto it = labels_.find(f.label);
        if (it == labels_.end()) {
            throw std::runtime_error("unresolved label: " + f.label +
                                     " in program " + prog_.name);
        }
        prog_.code[f.instIdx].imm = static_cast<int64_t>(it->second);
    }
    fixups_.clear();
    return std::move(prog_);
}

} // namespace mica::isa
