/**
 * @file
 * In-memory representation of an assembled mini-ISA program.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/opcode.hh"

namespace mica::isa
{

/** Conventional register names (integer file). */
namespace reg
{
constexpr uint8_t Zero = 0;   ///< hardwired zero
constexpr uint8_t Ra = 1;     ///< return address
constexpr uint8_t Sp = 2;     ///< stack pointer
constexpr uint8_t A0 = 3;     ///< arguments / results A0..A5
constexpr uint8_t A1 = 4;
constexpr uint8_t A2 = 5;
constexpr uint8_t A3 = 6;
constexpr uint8_t A4 = 7;
constexpr uint8_t A5 = 8;
constexpr uint8_t T0 = 9;     ///< temporaries T0..T9
constexpr uint8_t T1 = 10;
constexpr uint8_t T2 = 11;
constexpr uint8_t T3 = 12;
constexpr uint8_t T4 = 13;
constexpr uint8_t T5 = 14;
constexpr uint8_t T6 = 15;
constexpr uint8_t T7 = 16;
constexpr uint8_t T8 = 17;
constexpr uint8_t T9 = 18;
constexpr uint8_t S0 = 19;    ///< saved S0..S9
constexpr uint8_t S1 = 20;
constexpr uint8_t S2 = 21;
constexpr uint8_t S3 = 22;
constexpr uint8_t S4 = 23;
constexpr uint8_t S5 = 24;
constexpr uint8_t S6 = 25;
constexpr uint8_t S7 = 26;
constexpr uint8_t S8 = 27;
constexpr uint8_t S9 = 28;
constexpr uint8_t G0 = 29;    ///< globals G0..G2
constexpr uint8_t G1 = 30;
constexpr uint8_t G2 = 31;
} // namespace reg

/**
 * One static instruction. Register fields index into the integer or FP
 * file depending on the opcode (opcodeIsFp); imm carries immediates,
 * load/store displacements, and (after label resolution) control-transfer
 * instruction indices.
 */
struct Inst
{
    Opcode op = Opcode::Nop;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    int64_t imm = 0;
};

/** A chunk of initialized (or zero-reserved) data memory. */
struct DataSegment
{
    uint64_t base = 0;
    std::vector<uint8_t> bytes;
};

/**
 * An assembled program: static code, initial data image, and layout
 * constants. Instruction i occupies address codeBase() + 4*i.
 */
class Program
{
  public:
    static constexpr uint64_t kCodeBase = 0x400000;
    static constexpr uint64_t kDataBase = 0x10000000;
    static constexpr uint64_t kStackTop = 0x7ff00000;
    /** Return-address sentinel: transferring here terminates execution. */
    static constexpr uint64_t kHaltAddr = 0xdead0000;

    std::vector<Inst> code;
    std::vector<DataSegment> segments;
    std::string name;

    /** @return address of instruction at index idx. */
    uint64_t pcOf(uint64_t idx) const { return kCodeBase + 4 * idx; }

    /** @return instruction index of a code address. */
    uint64_t idxOf(uint64_t pc) const { return (pc - kCodeBase) / 4; }

    /** @return total bytes of initialized data. */
    size_t
    dataBytes() const
    {
        size_t n = 0;
        for (const auto &s : segments)
            n += s.bytes.size();
        return n;
    }
};

} // namespace mica::isa
