#include "service/client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "service/protocol.hh"
#include "service/server.hh"

namespace mica::service
{

ServiceClient::~ServiceClient()
{
    close();
}

ServiceClient::ServiceClient(ServiceClient &&o) noexcept
    : fd_(o.fd_), buf_(std::move(o.buf_))
{
    o.fd_ = -1;
}

ServiceClient &
ServiceClient::operator=(ServiceClient &&o) noexcept
{
    if (this != &o) {
        close();
        fd_ = o.fd_;
        buf_ = std::move(o.buf_);
        o.fd_ = -1;
    }
    return *this;
}

bool
ServiceClient::connect(const std::string &address, std::string *err)
{
    close();
    SocketAddress addr;
    if (!parseAddress(address, &addr, err))
        return false;
    auto fail = [&](const char *what) {
        if (err)
            *err = std::string(what) + ": " + std::strerror(errno);
        close();
        return false;
    };
    if (addr.isUnix) {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd_ < 0)
            return fail("socket");
        sockaddr_un sa{};
        sa.sun_family = AF_UNIX;
        std::strncpy(sa.sun_path, addr.path.c_str(),
                     sizeof(sa.sun_path) - 1);
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&sa),
                      sizeof(sa)) != 0)
            return fail("connect");
        return true;
    }
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        return fail("socket");
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(addr.port);
    if (inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
        errno = EINVAL;
        return fail("host");
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&sa),
                  sizeof(sa)) != 0)
        return fail("connect");
    return true;
}

bool
ServiceClient::sendLine(const std::string &line, std::string *err)
{
    std::string data = line;
    data += '\n';
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd_, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (err)
                *err = std::string("send: ") + std::strerror(errno);
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

bool
ServiceClient::recvLine(std::string *reply, std::string *err)
{
    for (;;) {
        const size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            *reply = buf_.substr(0, nl);
            buf_.erase(0, nl + 1);
            return true;
        }
        if (buf_.size() > kMaxLineBytes + 1024) {
            if (err)
                *err = "response line too long";
            return false;
        }
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n > 0) {
            buf_.append(chunk, static_cast<size_t>(n));
            continue;
        }
        if (n == 0) {
            if (err)
                *err = "server closed the connection";
            return false;
        }
        if (errno == EINTR)
            continue;
        if (err)
            *err = std::string("recv: ") + std::strerror(errno);
        return false;
    }
}

bool
ServiceClient::request(const std::string &line, std::string *reply,
                       std::string *err)
{
    return sendLine(line, err) && recvLine(reply, err);
}

void
ServiceClient::shutdownWrite()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_WR);
}

void
ServiceClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buf_.clear();
}

} // namespace mica::service
