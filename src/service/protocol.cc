#include "service/protocol.hh"

namespace mica::service
{

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
    case ErrorCode::BadJson:
        return "bad_json";
    case ErrorCode::BadRequest:
        return "bad_request";
    case ErrorCode::UnknownOp:
        return "unknown_op";
    case ErrorCode::UnknownBench:
        return "unknown_bench";
    case ErrorCode::LineTooLong:
        return "line_too_long";
    case ErrorCode::Unavailable:
        return "unavailable";
    case ErrorCode::Internal:
        return "internal";
    }
    return "internal";
}

const char *
opName(Op op)
{
    switch (op) {
    case Op::Ping:
        return "ping";
    case Op::Stats:
        return "stats";
    case Op::Profile:
        return "profile";
    case Op::Knn:
        return "knn";
    case Op::Radius:
        return "radius";
    case Op::Redundant:
        return "redundant";
    case Op::Suites:
        return "suites";
    case Op::Reindex:
        return "reindex";
    }
    return "ping";
}

namespace
{

bool
failWith(ErrorCode *code, std::string *message, ErrorCode c,
         const std::string &m)
{
    *code = c;
    *message = m;
    return false;
}

/** @return the "bench" string field, validating presence and type. */
bool
requireBench(const JsonValue &doc, Request *out, ErrorCode *code,
             std::string *message)
{
    const JsonValue *b = doc.find("bench");
    if (!b || !b->isString() || b->asString().empty()) {
        return failWith(code, message, ErrorCode::BadRequest,
                        "'bench' must be a non-empty string");
    }
    out->bench = b->asString();
    return true;
}

/** Read an optional non-negative count field with a range ceiling. */
bool
optionalCount(const JsonValue &doc, const char *field, size_t fallback,
              size_t maxValue, size_t *out, ErrorCode *code,
              std::string *message)
{
    const JsonValue *v = doc.find(field);
    if (!v) {
        *out = fallback;
        return true;
    }
    const int64_t n = v->asCount();
    if (n < 0 || static_cast<uint64_t>(n) > maxValue) {
        return failWith(code, message, ErrorCode::BadRequest,
                        std::string("'") + field +
                            "' must be an integer in [0, " +
                            std::to_string(maxValue) + "]");
    }
    *out = static_cast<size_t>(n);
    return true;
}

bool
optionalBool(const JsonValue &doc, const char *field, bool *out,
             ErrorCode *code, std::string *message)
{
    const JsonValue *v = doc.find(field);
    if (!v) {
        *out = false;
        return true;
    }
    if (!v->isBool()) {
        return failWith(code, message, ErrorCode::BadRequest,
                        std::string("'") + field +
                            "' must be a boolean");
    }
    *out = v->asBool();
    return true;
}

} // namespace

bool
parseRequest(const std::string &line, Request *out, ErrorCode *code,
             std::string *message)
{
    *out = Request();
    JsonValue doc;
    std::string perr;
    if (!parseJson(line, &doc, &perr))
        return failWith(code, message, ErrorCode::BadJson, perr);
    if (!doc.isObject()) {
        return failWith(code, message, ErrorCode::BadJson,
                        "request must be a JSON object");
    }
    // The id is salvaged before any validation so even a garbage
    // request's error reply can be matched by a pipelined client.
    if (const JsonValue *id = doc.find("id")) {
        out->id = *id;
        out->hasId = true;
    }
    const JsonValue *op = doc.find("op");
    if (!op || !op->isString()) {
        return failWith(code, message, ErrorCode::BadRequest,
                        "'op' must be a string");
    }
    const std::string &name = op->asString();
    if (name == "ping") {
        out->op = Op::Ping;
        return true;
    }
    if (name == "stats") {
        out->op = Op::Stats;
        return true;
    }
    if (name == "reindex") {
        out->op = Op::Reindex;
        return true;
    }
    if (name == "profile") {
        out->op = Op::Profile;
        if (!requireBench(doc, out, code, message))
            return false;
        out->space = "mica";
        if (const JsonValue *s = doc.find("space")) {
            if (!s->isString() || (s->asString() != "mica" &&
                                   s->asString() != "hpc")) {
                return failWith(code, message, ErrorCode::BadRequest,
                                "'space' must be \"mica\" or \"hpc\"");
            }
            out->space = s->asString();
        }
        return true;
    }
    if (name == "knn") {
        out->op = Op::Knn;
        if (!requireBench(doc, out, code, message) ||
            !optionalCount(doc, "k", 10, 1u << 20, &out->k, code,
                           message) ||
            !optionalBool(doc, "brute", &out->brute, code, message))
            return false;
        return true;
    }
    if (name == "radius") {
        out->op = Op::Radius;
        if (!requireBench(doc, out, code, message) ||
            !optionalBool(doc, "brute", &out->brute, code, message))
            return false;
        const JsonValue *r = doc.find("r");
        if (!r || !r->isNumber() || !(r->asDouble() >= 0.0)) {
            return failWith(code, message, ErrorCode::BadRequest,
                            "'r' must be a non-negative number");
        }
        out->radius = r->asDouble();
        return true;
    }
    if (name == "redundant") {
        out->op = Op::Redundant;
        if (!optionalCount(doc, "top", 10, 1u << 20, &out->top, code,
                           message) ||
            !optionalBool(doc, "brute", &out->brute, code, message))
            return false;
        return true;
    }
    if (name == "suites") {
        out->op = Op::Suites;
        if (const JsonValue *s = doc.find("suite")) {
            if (!s->isString()) {
                return failWith(code, message, ErrorCode::BadRequest,
                                "'suite' must be a string");
            }
            out->suite = s->asString();
        }
        return true;
    }
    return failWith(code, message, ErrorCode::UnknownOp,
                    "unknown op '" + name + "'");
}

JsonValue
makeResponse(const Request &req, JsonValue result)
{
    JsonValue resp = JsonValue::object();
    if (req.hasId)
        resp.set("id", req.id);
    resp.set("ok", JsonValue::boolean(true));
    resp.set("op", JsonValue::str(opName(req.op)));
    resp.set("result", std::move(result));
    return resp;
}

JsonValue
makeError(const Request &req, ErrorCode code, const std::string &message)
{
    JsonValue resp = JsonValue::object();
    if (req.hasId)
        resp.set("id", req.id);
    resp.set("ok", JsonValue::boolean(false));
    JsonValue err = JsonValue::object();
    err.set("code", JsonValue::str(errorCodeName(code)));
    err.set("message", JsonValue::str(message));
    resp.set("error", std::move(err));
    return resp;
}

std::string
serializeResponse(const JsonValue &response)
{
    return response.dump();
}

} // namespace mica::service
