#include "service/query_engine.hh"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <utility>

#include "index/snapshot.hh"
#include "index/vp_tree.hh"
#include "methodology/genetic_selector.hh"
#include "methodology/workload_space.hh"
#include "mica/profile.hh"
#include "obs/obs.hh"
#include "pipeline/profile_store.hh"
#include "pipeline/thread_pool.hh"
#include "uarch/hw_counter.hh"

namespace mica::service
{

std::string
datasetKeyPart(const experiments::DatasetConfig &cfg)
{
    pipeline::StoreKey key;
    key.maxInsts = cfg.maxInsts;
    key.ppmMaxOrder = cfg.ppmMaxOrder;
    key.suites = cfg.suites;
    return key.describe();
}

std::string
indexKey(const experiments::DatasetConfig &cfg, const std::string &space,
         size_t pca)
{
    return datasetKeyPart(cfg) + "|space=" + space +
        "|pca=" + std::to_string(pca);
}

bool
adoptSpaceFromKey(const std::string &storedKey, SpaceChoice *sc)
{
    if (sc->given)
        return false;
    const size_t sPos = storedKey.rfind("|space=");
    const size_t pPos = storedKey.rfind("|pca=");
    if (sPos == std::string::npos || pPos == std::string::npos ||
        pPos <= sPos)
        return false;
    sc->space = storedKey.substr(sPos + 7, pPos - (sPos + 7));
    sc->pca = static_cast<size_t>(
        std::strtoull(storedKey.c_str() + pPos + 5, nullptr, 10));
    return true;
}

index::FingerprintIndex
indexFromDataset(const experiments::SuiteDataset &ds,
                 const std::string &space, size_t pca,
                 pipeline::ThreadPool *pool)
{
    index::FingerprintOptions opt;
    opt.pcaDims = pca;
    Matrix m;
    if (space == "hpc") {
        m = ds.hpcMatrix();
    } else {
        m = ds.micaMatrix();
        if (space == "key") {
            // Fingerprint the raw matrix restricted to the GA-selected
            // key characteristics; normalization is re-frozen over the
            // subset, as the paper's reduced space does.
            const WorkloadSpace ws(m, pool);
            GaConfig gcfg;
            opt.columns = geneticSelect(ws, gcfg, pool).selected;
        }
    }
    return index::FingerprintIndex::build(m, opt);
}

namespace
{

/** Max pairwise fingerprint distance across the whole population. */
double
populationMaxDist(const index::FingerprintIndex &idx)
{
    const index::FingerprintSet &fps = idx.fingerprints();
    double maxD = 0.0;
    for (size_t a = 0; a + 1 < fps.size(); ++a) {
        for (size_t b = a + 1; b < fps.size(); ++b) {
            const double d =
                index::l2Dist(fps.vec(a), fps.vec(b), fps.dim);
            if (d > maxD)
                maxD = d;
        }
    }
    return maxD;
}

} // namespace

std::shared_ptr<const ServerSnapshot>
buildServerSnapshot(const experiments::DatasetConfig &cfg, SpaceChoice sc,
                    pipeline::ThreadPool *pool, uint64_t generation,
                    const CollectFn &collect, std::string *err)
{
    obs::ObsSpan span("serve.snapshot.build");
    experiments::DatasetConfig icfg = cfg;
    if (icfg.cacheDir.empty())
        icfg.cacheDir = ".mica-index";

    // One header probe serves both the space adoption and the
    // load-vs-rebuild decision; the payload is only read below when
    // the key already matches.
    const std::string path = index::snapshotPath(icfg.cacheDir);
    const index::SnapshotKeyProbe probe = index::probeSnapshotKey(path);
    if (probe.valid)
        adoptSpaceFromKey(probe.key, &sc);
    if (sc.space != "mica" && sc.space != "hpc" && sc.space != "key") {
        if (err)
            *err = "space must be mica, hpc, or key (got '" + sc.space +
                "')";
        return nullptr;
    }

    auto snap = std::make_shared<ServerSnapshot>();
    snap->space = sc.space;
    snap->pca = sc.pca;
    snap->key = indexKey(icfg, sc.space, sc.pca);
    snap->generation = generation;

    try {
        snap->ds = collect ? collect(icfg)
                           : experiments::collectSuiteDataset(icfg);
    } catch (const std::exception &e) {
        if (err)
            *err = e.what();
        return nullptr;
    }
    if (snap->ds.benchmarks.empty()) {
        if (err)
            *err = "dataset is empty — nothing to serve";
        return nullptr;
    }

    bool loaded = false;
    if (probe.valid && probe.key == snap->key) {
        std::string why;
        loaded = index::loadIndexSnapshot(path, snap->key, &snap->idx,
                                          &why);
    }
    if (!loaded) {
        snap->idx =
            indexFromDataset(snap->ds, sc.space, sc.pca, pool);
        // Persisting is best-effort: an unwritable cache degrades the
        // next start to a rebuild, it does not fail this one.
        std::string why;
        index::saveIndexSnapshot(snap->idx, path, snap->key, &why);
    }

    // A quarantined benchmark is absent from both the dataset and a
    // freshly built index, but a *reloaded* snapshot may predate the
    // quarantine. The index stands alone (similarity queries answer
    // from fingerprints), but profile queries answer only from the
    // dataset, so the two can legitimately differ in membership.
    snap->maxPairDist = populationMaxDist(snap->idx);
    span.arg("benchmarks", static_cast<uint64_t>(snap->ds.benchmarks.size()));
    span.arg("generation", generation);
    return snap;
}

namespace
{

JsonValue
neighborsJson(const ServerSnapshot &snap,
              const std::vector<index::Neighbor> &neighbors)
{
    JsonValue arr = JsonValue::array();
    for (const auto &nb : neighbors) {
        JsonValue one = JsonValue::object();
        one.set("bench", JsonValue::str(snap.idx.nameOf(nb.id)));
        one.set("dist", JsonValue::number(nb.dist));
        arr.push(std::move(one));
    }
    return arr;
}

JsonValue
execProfile(const ServerSnapshot &snap, const Request &req,
            ErrorCode *code, std::string *message)
{
    const size_t row = snap.ds.indexOf(req.bench);
    if (row == static_cast<size_t>(-1)) {
        *code = ErrorCode::UnknownBench;
        *message = "'" + req.bench + "' is not in the served dataset";
        return JsonValue();
    }
    JsonValue result = JsonValue::object();
    result.set("bench", JsonValue::str(req.bench));
    result.set("space", JsonValue::str(req.space));
    JsonValue values = JsonValue::object();
    if (req.space == "hpc") {
        const auto &p = snap.ds.hpcProfiles[row];
        result.set("inst_count", JsonValue::number(p.instCount));
        const auto v = p.toVector();
        for (size_t i = 0; i < v.size(); ++i) {
            values.set(uarch::HwCounterProfile::metricNames()[i],
                       JsonValue::number(v[i]));
        }
    } else {
        const auto &p = snap.ds.micaProfiles[row];
        result.set("inst_count", JsonValue::number(p.instCount));
        for (size_t c = 0; c < kNumMicaChars; ++c) {
            values.set(micaCharInfo(c).name, JsonValue::number(p[c]));
        }
    }
    result.set("values", std::move(values));
    return result;
}

JsonValue
execKnn(const ServerSnapshot &snap, const Request &req, ErrorCode *code,
        std::string *message)
{
    const int64_t id = snap.idx.idOf(req.bench);
    if (id < 0) {
        *code = ErrorCode::UnknownBench;
        *message = "'" + req.bench + "' is not in the index";
        return JsonValue();
    }
    JsonValue result = JsonValue::object();
    result.set("bench", JsonValue::str(req.bench));
    result.set("k", JsonValue::number(static_cast<uint64_t>(req.k)));
    result.set("neighbors",
               neighborsJson(snap, snap.idx.knn(static_cast<size_t>(id),
                                                req.k, req.brute)));
    return result;
}

JsonValue
execRadius(const ServerSnapshot &snap, const Request &req,
           ErrorCode *code, std::string *message)
{
    const int64_t id = snap.idx.idOf(req.bench);
    if (id < 0) {
        *code = ErrorCode::UnknownBench;
        *message = "'" + req.bench + "' is not in the index";
        return JsonValue();
    }
    JsonValue result = JsonValue::object();
    result.set("bench", JsonValue::str(req.bench));
    result.set("r", JsonValue::number(req.radius));
    result.set("neighbors",
               neighborsJson(snap,
                             snap.idx.radius(static_cast<size_t>(id),
                                             req.radius, req.brute)));
    return result;
}

JsonValue
execRedundant(const ServerSnapshot &snap, const Request &req)
{
    const auto pairs =
        snap.idx.mostRedundant(req.top, nullptr, req.brute);
    JsonValue result = JsonValue::object();
    result.set("top", JsonValue::number(static_cast<uint64_t>(req.top)));
    JsonValue arr = JsonValue::array();
    for (const auto &p : pairs) {
        JsonValue one = JsonValue::object();
        one.set("a", JsonValue::str(snap.idx.nameOf(p.a)));
        one.set("b", JsonValue::str(snap.idx.nameOf(p.b)));
        one.set("dist", JsonValue::number(p.dist));
        arr.push(std::move(one));
    }
    result.set("pairs", std::move(arr));
    return result;
}

JsonValue
execSuites(const ServerSnapshot &snap, const Request &req,
           ErrorCode *code, std::string *message)
{
    // Suites in first-appearance order of the served dataset: stable,
    // and only suites the snapshot actually holds.
    std::vector<std::string> suites;
    for (const auto &b : snap.ds.benchmarks) {
        if (std::find(suites.begin(), suites.end(), b.suite) ==
            suites.end())
            suites.push_back(b.suite);
    }
    if (!req.suite.empty()) {
        if (std::find(suites.begin(), suites.end(), req.suite) ==
            suites.end()) {
            *code = ErrorCode::UnknownBench;
            *message =
                "suite '" + req.suite + "' is not in the served dataset";
            return JsonValue();
        }
        suites = {req.suite};
    }

    const index::FingerprintSet &fps = snap.idx.fingerprints();
    const double simCut = 0.2 * snap.maxPairDist;
    JsonValue arr = JsonValue::array();
    for (const auto &suite : suites) {
        // Member fingerprint ids (benchmarks present in the index).
        std::vector<size_t> ids;
        for (const auto &b : snap.ds.benchmarks) {
            if (b.suite != suite)
                continue;
            const int64_t id = snap.idx.idOf(b.fullName());
            if (id >= 0)
                ids.push_back(static_cast<size_t>(id));
        }
        double minD = 0.0, maxD = 0.0, sum = 0.0;
        size_t pairs = 0, redundant = 0;
        for (size_t i = 0; i + 1 < ids.size(); ++i) {
            for (size_t j = i + 1; j < ids.size(); ++j) {
                const double d = index::l2Dist(
                    fps.vec(ids[i]), fps.vec(ids[j]), fps.dim);
                if (pairs == 0 || d < minD)
                    minD = d;
                if (d > maxD)
                    maxD = d;
                sum += d;
                ++pairs;
                if (d <= simCut)
                    ++redundant;
            }
        }
        JsonValue one = JsonValue::object();
        one.set("suite", JsonValue::str(suite));
        one.set("count",
                JsonValue::number(static_cast<uint64_t>(ids.size())));
        one.set("mean_dist",
                JsonValue::number(pairs ? sum / static_cast<double>(pairs)
                                        : 0.0));
        one.set("min_dist", JsonValue::number(pairs ? minD : 0.0));
        one.set("max_dist", JsonValue::number(pairs ? maxD : 0.0));
        // The paper's 20%-of-max similarity threshold: how many
        // within-suite pairs are redundant by that cut.
        one.set("pairs_within_20pct_max",
                JsonValue::number(static_cast<uint64_t>(redundant)));
        arr.push(std::move(one));
    }
    JsonValue result = JsonValue::object();
    result.set("population_max_dist",
               JsonValue::number(snap.maxPairDist));
    result.set("suites", std::move(arr));
    return result;
}

} // namespace

JsonValue
executeRequest(const ServerSnapshot &snap, const Request &req,
               bool serverMode)
{
    try {
        ErrorCode code = ErrorCode::Internal;
        std::string message;
        JsonValue result;
        switch (req.op) {
        case Op::Ping:
            result = JsonValue::object();
            result.set("pong", JsonValue::boolean(true));
            result.set("generation", JsonValue::number(snap.generation));
            return makeResponse(req, std::move(result));
        case Op::Stats:
            result = JsonValue::object();
            result.set("generation", JsonValue::number(snap.generation));
            result.set("benchmarks",
                       JsonValue::number(static_cast<uint64_t>(
                           snap.ds.benchmarks.size())));
            result.set("indexed",
                       JsonValue::number(
                           static_cast<uint64_t>(snap.idx.size())));
            result.set("dim", JsonValue::number(
                                  static_cast<uint64_t>(snap.idx.dim())));
            result.set("space", JsonValue::str(snap.space));
            result.set("pca", JsonValue::number(
                                  static_cast<uint64_t>(snap.pca)));
            result.set("population_max_dist",
                       JsonValue::number(snap.maxPairDist));
            // Server-only introspection: live request counters and
            // latency quantiles folded from the telemetry registry.
            // Gated on serverMode so a local `mica query` answer stays
            // byte-identical to... itself — the local path has no
            // daemon to describe (and CI diffs the other ops).
            if (serverMode) {
                const obs::MetricsSnapshot ms = obs::snapshotMetrics();
                const auto count = [&](const char *name) -> int64_t {
                    const auto it = ms.metrics.find(name);
                    return it == ms.metrics.end() ? 0 : it->second.value;
                };
                result.set("uptime_s",
                           JsonValue::number(
                               static_cast<double>(obs::nowNs()) / 1e9));
                JsonValue reqs = JsonValue::object();
                reqs.set("total",
                         JsonValue::number(count("serve.request.count")));
                reqs.set("errors",
                         JsonValue::number(count("serve.request.error")));
                JsonValue byOp = JsonValue::object();
                for (const char *op :
                     {"ping", "stats", "profile", "knn", "radius",
                      "redundant", "suites", "reindex"})
                    byOp.set(op,
                             JsonValue::number(count(
                                 ("serve.request.op." + std::string(op))
                                     .c_str())));
                reqs.set("by_op", std::move(byOp));
                obs::HistogramValue hist;
                const auto it = ms.metrics.find("serve.request.us");
                if (it != ms.metrics.end() &&
                    it->second.kind == obs::MetricKind::Histogram)
                    hist = it->second.hist;
                JsonValue lat = JsonValue::object();
                lat.set("count", JsonValue::number(hist.count));
                lat.set("p50",
                        JsonValue::number(obs::histQuantile(hist, 0.50)));
                lat.set("p90",
                        JsonValue::number(obs::histQuantile(hist, 0.90)));
                lat.set("p99",
                        JsonValue::number(obs::histQuantile(hist, 0.99)));
                reqs.set("latency_us", std::move(lat));
                result.set("requests", std::move(reqs));
                JsonValue conns = JsonValue::object();
                conns.set("open",
                          JsonValue::number(count("serve.conn.open")));
                conns.set("accepted",
                          JsonValue::number(count("serve.conn.accepted")));
                conns.set("rejected",
                          JsonValue::number(count("serve.conn.rejected")));
                conns.set(
                    "quarantined",
                    JsonValue::number(count("serve.conn.quarantined")));
                result.set("connections", std::move(conns));
            }
            return makeResponse(req, std::move(result));
        case Op::Profile:
            result = execProfile(snap, req, &code, &message);
            break;
        case Op::Knn:
            result = execKnn(snap, req, &code, &message);
            break;
        case Op::Radius:
            result = execRadius(snap, req, &code, &message);
            break;
        case Op::Redundant:
            return makeResponse(req, execRedundant(snap, req));
        case Op::Suites:
            result = execSuites(snap, req, &code, &message);
            break;
        case Op::Reindex:
            // The daemon intercepts reindex before dispatching here;
            // reaching the engine means there is no server to rebuild.
            return makeError(req, ErrorCode::Unavailable,
                             serverMode
                                 ? "reindex is handled by the server"
                                 : "reindex needs a running server "
                                   "(mica serve)");
        }
        if (result.isNull())
            return makeError(req, code, message);
        return makeResponse(req, std::move(result));
    } catch (const std::exception &e) {
        return makeError(req, ErrorCode::Internal, e.what());
    } catch (...) {
        return makeError(req, ErrorCode::Internal, "unknown error");
    }
}

std::string
executeLine(const ServerSnapshot &snap, const std::string &line,
            bool serverMode)
{
    Request req;
    ErrorCode code = ErrorCode::Internal;
    std::string message;
    if (!parseRequest(line, &req, &code, &message))
        return serializeResponse(makeError(req, code, message));
    return serializeResponse(executeRequest(snap, req, serverMode));
}

} // namespace mica::service
