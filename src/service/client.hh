/**
 * @file
 * Minimal blocking client for the mica service wire protocol: connect
 * to a daemon, send one request line, read one response line. Used by
 * `mica query --connect`, the `mica serve-bench` load generator, and
 * the service tests — one implementation, so every consumer speaks
 * the protocol identically.
 */

#pragma once

#include <string>

namespace mica::service
{

class ServiceClient
{
  public:
    ServiceClient() = default;
    ~ServiceClient();

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    ServiceClient(ServiceClient &&o) noexcept;
    ServiceClient &operator=(ServiceClient &&o) noexcept;

    /**
     * Connect to "unix:PATH" / "tcp:HOST:PORT" (see parseAddress).
     * @return false with *err on failure
     */
    bool connect(const std::string &address, std::string *err);

    bool connected() const { return fd_ >= 0; }

    /**
     * Send @p line (newline appended) and block for the full response
     * line. @return false with *err on I/O failure or a closed peer
     */
    bool request(const std::string &line, std::string *reply,
                 std::string *err);

    /** Send only; pair with recvLine for pipelined use. */
    bool sendLine(const std::string &line, std::string *err);

    /** Read one '\n'-terminated line (newline stripped). */
    bool recvLine(std::string *reply, std::string *err);

    /** Half-close the write side (the server sees EOF after replies). */
    void shutdownWrite();

    void close();

  private:
    int fd_ = -1;
    std::string buf_;   ///< bytes read past the last returned line
};

} // namespace mica::service
