#include "service/server.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.hh"
#include "pipeline/thread_pool.hh"
#include "util/failpoint.hh"

namespace mica::service
{

// ---------------------------------------------------------------------------
// Address parsing

bool
parseAddress(const std::string &spec, SocketAddress *out,
             std::string *err)
{
    *out = SocketAddress();
    auto fail = [&](const std::string &m) {
        if (err)
            *err = "bad address '" + spec + "': " + m;
        return false;
    };
    if (spec.empty())
        return fail("empty");

    std::string rest = spec;
    if (rest.rfind("unix:", 0) == 0) {
        out->isUnix = true;
        out->path = rest.substr(5);
        if (out->path.empty())
            return fail("empty unix path");
        if (out->path.size() >= sizeof(sockaddr_un{}.sun_path))
            return fail("unix path too long");
        return true;
    }
    if (rest.rfind("tcp:", 0) == 0)
        rest = rest.substr(4);
    else if (rest.find('/') != std::string::npos) {
        // A bare path is a unix socket; no TCP endpoint contains '/'.
        out->isUnix = true;
        out->path = rest;
        if (out->path.size() >= sizeof(sockaddr_un{}.sun_path))
            return fail("unix path too long");
        return true;
    }

    const size_t colon = rest.rfind(':');
    std::string host = colon == std::string::npos
        ? std::string()
        : rest.substr(0, colon);
    const std::string portStr =
        colon == std::string::npos ? rest : rest.substr(colon + 1);
    if (portStr.empty() ||
        portStr.find_first_not_of("0123456789") != std::string::npos)
        return fail("port must be numeric");
    const unsigned long port = std::strtoul(portStr.c_str(), nullptr, 10);
    if (port > 65535)
        return fail("port out of range");
    out->isUnix = false;
    out->host = host.empty() ? "127.0.0.1" : host;
    out->port = static_cast<uint16_t>(port);
    return true;
}

// ---------------------------------------------------------------------------
// SnapshotHolder

SnapshotHolder::SnapshotHolder(
    std::shared_ptr<const ServerSnapshot> initial)
    : snap_(std::move(initial))
{
}

std::shared_ptr<const ServerSnapshot>
SnapshotHolder::get() const
{
    return std::atomic_load(&snap_);
}

void
SnapshotHolder::swap(std::shared_ptr<const ServerSnapshot> next)
{
    std::atomic_store(&snap_, std::move(next));
}

// ---------------------------------------------------------------------------
// Server

namespace
{

bool
setNonBlocking(int fd)
{
    const int flags = fcntl(fd, F_GETFL, 0);
    return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/** Apply a fired failpoint decision to a socket op: Delay sleeps and
 *  proceeds, everything else becomes a synthetic errno failure. */
bool
failDecisionFails(const util::FailDecision &d)
{
    if (d.op == util::FailOp::Delay) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(d.param));
        return false;
    }
    errno = d.err != 0 ? d.err : EIO;
    return true;
}

/** @return the per-op request counter for @p op (static registry). */
obs::Counter &
opCounter(Op op)
{
    static obs::Counter ping("serve.request.op.ping");
    static obs::Counter stats("serve.request.op.stats");
    static obs::Counter profile("serve.request.op.profile");
    static obs::Counter knn("serve.request.op.knn");
    static obs::Counter radius("serve.request.op.radius");
    static obs::Counter redundant("serve.request.op.redundant");
    static obs::Counter suites("serve.request.op.suites");
    static obs::Counter reindex("serve.request.op.reindex");
    switch (op) {
    case Op::Ping:
        return ping;
    case Op::Stats:
        return stats;
    case Op::Profile:
        return profile;
    case Op::Knn:
        return knn;
    case Op::Radius:
        return radius;
    case Op::Redundant:
        return redundant;
    case Op::Suites:
        return suites;
    case Op::Reindex:
        break;
    }
    return reindex;
}

/** One accepted client. Sockets are touched only by the event loop;
 *  workers append to `out` under `mu` and wake the loop. */
struct Connection
{
    int fd = -1;
    std::string in;            ///< unparsed request bytes
    std::atomic<bool> busy{false};   ///< a request is on a worker
    bool sawEof = false;       ///< client half-closed its write side
    bool closeAfterFlush = false;
    bool dead = false;         ///< quarantined; reap when not busy

    std::mutex mu;
    std::string out;           ///< response bytes awaiting flush
};

} // namespace

struct Server::Impl
{
    ServerOptions opt;
    SocketAddress addr;
    SnapshotHolder holder;
    experiments::DatasetConfig cfg;
    SpaceChoice sc;
    CollectFn collect;

    int listenFd = -1;
    int wakeRead = -1;
    int wakeWrite = -1;
    std::string bound;         ///< canonical bound-address string
    bool unlinkOnClose = false;

    std::unique_ptr<pipeline::ThreadPool> pool;
    std::vector<std::unique_ptr<Connection>> conns;
    std::atomic<bool> stopping{false};
    std::atomic<bool> reindexing{false};
    std::atomic<uint64_t> generation{0};

    Impl(ServerOptions o, std::shared_ptr<const ServerSnapshot> snap,
         experiments::DatasetConfig c, SpaceChoice s, CollectFn col)
        : opt(std::move(o)), holder(std::move(snap)),
          cfg(std::move(c)), sc(std::move(s)), collect(std::move(col))
    {
    }

    ~Impl()
    {
        // Workers reference connections; they must retire first.
        pool.reset();
        for (auto &c : conns) {
            if (c->fd >= 0)
                ::close(c->fd);
        }
        if (listenFd >= 0)
            ::close(listenFd);
        if (wakeRead >= 0)
            ::close(wakeRead);
        if (wakeWrite >= 0)
            ::close(wakeWrite);
        if (unlinkOnClose)
            ::unlink(addr.path.c_str());
    }

    void
    wake() noexcept
    {
        if (wakeWrite < 0)
            return;
        const char b = 'w';
        // A full pipe already guarantees a pending wakeup.
        [[maybe_unused]] ssize_t n = ::write(wakeWrite, &b, 1);
    }

    bool start(std::string *err);
    int run();
    void acceptClients();
    void readClient(Connection &c);
    void flushClient(Connection &c);
    void dispatchLines(Connection &c);
    void submitRequest(Connection &c, std::string line);
    std::string handleReindex(const std::string &line);
    void quarantine(Connection &c);
    void closeAllConnections();
};

bool
Server::Impl::start(std::string *err)
{
    auto fail = [&](const char *what) {
        if (err)
            *err = std::string(what) + ": " + std::strerror(errno);
        if (listenFd >= 0) {
            ::close(listenFd);
            listenFd = -1;
        }
        return false;
    };

    if (!parseAddress(opt.address, &addr, err))
        return false;

    int pipeFds[2] = {-1, -1};
    if (pipe(pipeFds) != 0)
        return fail("pipe");
    wakeRead = pipeFds[0];
    wakeWrite = pipeFds[1];
    setNonBlocking(wakeRead);
    setNonBlocking(wakeWrite);

    if (addr.isUnix) {
        listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listenFd < 0)
            return fail("socket");
        sockaddr_un sa{};
        sa.sun_family = AF_UNIX;
        std::strncpy(sa.sun_path, addr.path.c_str(),
                     sizeof(sa.sun_path) - 1);
        // A stale socket file from a dead daemon would make bind fail
        // forever; remove it only when nothing is listening there.
        ::unlink(addr.path.c_str());
        if (::bind(listenFd, reinterpret_cast<sockaddr *>(&sa),
                   sizeof(sa)) != 0)
            return fail("bind");
        unlinkOnClose = true;
        bound = "unix:" + addr.path;
    } else {
        listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listenFd < 0)
            return fail("socket");
        const int one = 1;
        ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in sa{};
        sa.sin_family = AF_INET;
        sa.sin_port = htons(addr.port);
        if (inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
            errno = EINVAL;
            return fail("host");
        }
        if (::bind(listenFd, reinterpret_cast<sockaddr *>(&sa),
                   sizeof(sa)) != 0)
            return fail("bind");
        sockaddr_in actual{};
        socklen_t len = sizeof(actual);
        ::getsockname(listenFd, reinterpret_cast<sockaddr *>(&actual),
                      &len);
        addr.port = ntohs(actual.sin_port);
        bound = "tcp:" + addr.host + ":" + std::to_string(addr.port);
    }
    if (::listen(listenFd, 64) != 0)
        return fail("listen");
    if (!setNonBlocking(listenFd))
        return fail("fcntl");

    pool = std::make_unique<pipeline::ThreadPool>(
        static_cast<unsigned>(opt.jobs));
    return true;
}

void
Server::Impl::quarantine(Connection &c)
{
    static obs::Counter quarantined("serve.conn.quarantined");
    static obs::Gauge open("serve.conn.open");
    if (c.dead)
        return;
    quarantined.add(1);
    open.add(-1);
    if (c.fd >= 0) {
        ::close(c.fd);
        c.fd = -1;
    }
    c.dead = true;
}

void
Server::Impl::closeAllConnections()
{
    // Shutdown teardown: every connection still live leaves through
    // the same gauge that counted it in, so serve.conn.open reads 0
    // after any exit, not just a quiet one.
    static obs::Gauge open("serve.conn.open");
    for (auto &c : conns) {
        if (c->dead)
            continue;
        open.add(-1);
        if (c->fd >= 0) {
            ::close(c->fd);
            c->fd = -1;
        }
        c->dead = true;
    }
}

void
Server::Impl::acceptClients()
{
    static util::Failpoint fp("serve.accept");
    static obs::Counter accepted("serve.conn.accepted");
    static obs::Counter rejected("serve.conn.rejected");
    static obs::Gauge open("serve.conn.open");
    for (;;) {
        if (auto d = fp.eval()) {
            if (failDecisionFails(d)) {
                // The would-be client is the casualty, not the daemon:
                // accept it, then drop it.
                const int fd = ::accept(listenFd, nullptr, nullptr);
                rejected.add(1);
                if (fd < 0)
                    return;
                ::close(fd);
                continue;
            }
        }
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            return;   // EAGAIN (drained) or transient error: move on
        size_t live = 0;
        for (const auto &c : conns) {
            if (!c->dead)
                ++live;
        }
        if (live >= opt.maxConnections) {
            rejected.add(1);
            ::close(fd);
            continue;
        }
        setNonBlocking(fd);
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        conns.push_back(std::move(conn));
        accepted.add(1);
        open.add(1);
    }
}

void
Server::Impl::readClient(Connection &c)
{
    static util::Failpoint fp("serve.read");
    char buf[4096];
    for (;;) {
        if (auto d = fp.eval()) {
            if (failDecisionFails(d)) {
                quarantine(c);
                return;
            }
        }
        const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
        if (n > 0) {
            c.in.append(buf, static_cast<size_t>(n));
            if (c.in.size() > kMaxLineBytes &&
                c.in.find('\n') == std::string::npos) {
                // Reply before closing so the client learns why.
                Request req;
                std::lock_guard<std::mutex> lk(c.mu);
                c.out += serializeResponse(makeError(
                    req, ErrorCode::LineTooLong,
                    "request exceeds " +
                        std::to_string(kMaxLineBytes) + " bytes"));
                c.out += '\n';
                c.in.clear();
                c.closeAfterFlush = true;
                return;
            }
            if (n < static_cast<ssize_t>(sizeof(buf)))
                break;
            continue;
        }
        if (n == 0) {
            c.sawEof = true;
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
            break;
        quarantine(c);
        return;
    }
    dispatchLines(c);
}

void
Server::Impl::dispatchLines(Connection &c)
{
    if (c.busy || c.dead || c.closeAfterFlush)
        return;
    const size_t nl = c.in.find('\n');
    if (nl != std::string::npos) {
        std::string line = c.in.substr(0, nl);
        c.in.erase(0, nl + 1);
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty()) {
            // Blank keep-alive lines are ignored, like a newline-only
            // probe from `nc`.
            dispatchLines(c);
            return;
        }
        submitRequest(c, std::move(line));
        return;
    }
    if (c.sawEof) {
        if (!c.in.empty()) {
            // Half-closed mid-line: answer the fragment (almost
            // always bad_json) so the client still gets a reply.
            std::string line;
            line.swap(c.in);
            submitRequest(c, std::move(line));
            c.closeAfterFlush = true;
            return;
        }
        std::lock_guard<std::mutex> lk(c.mu);
        c.closeAfterFlush = true;
    }
}

void
Server::Impl::submitRequest(Connection &c, std::string line)
{
    static obs::Counter requests("serve.request.count");
    static obs::Counter errors("serve.request.error");
    static obs::Histogram latency("serve.request.us");
    c.busy = true;
    Connection *conn = &c;
    pool->submit([this, conn, line = std::move(line)] {
        requests.add(1);
        const uint64_t t0 = obs::nowNs();
        std::string reply;
        {
            obs::ObsSpan span("serve.request");
            span.arg("bytes", static_cast<uint64_t>(line.size()));
            Request req;
            ErrorCode code = ErrorCode::Internal;
            std::string message;
            if (!parseRequest(line, &req, &code, &message)) {
                reply = serializeResponse(makeError(req, code, message));
            } else if (req.op == Op::Reindex) {
                span.arg("op", opName(req.op));
                opCounter(req.op).add(1);
                reply = handleReindex(line);
            } else {
                span.arg("op", opName(req.op));
                opCounter(req.op).add(1);
                const auto snap = holder.get();
                reply = serializeResponse(
                    executeRequest(*snap, req, /*serverMode=*/true));
            }
        }
        if (reply.find("\"ok\":false") != std::string::npos)
            errors.add(1);
        latency.record((obs::nowNs() - t0) / 1000);
        {
            std::lock_guard<std::mutex> lk(conn->mu);
            conn->out += reply;
            conn->out += '\n';
            conn->busy = false;
        }
        wake();
    });
}

std::string
Server::Impl::handleReindex(const std::string &line)
{
    static obs::Counter swaps("serve.snapshot.swap");
    Request req;
    ErrorCode code = ErrorCode::Internal;
    std::string message;
    parseRequest(line, &req, &code, &message);   // re-parse for the id

    bool expected = false;
    if (!reindexing.compare_exchange_strong(expected, true)) {
        return serializeResponse(makeError(
            req, ErrorCode::Unavailable, "a reindex is already running"));
    }
    // Rebuild on this worker while every other worker keeps answering
    // from the current snapshot; the swap below is the only publication
    // point. Serial build (no pool): the query pool must stay free for
    // queries, and nested parallelBlocks is not allowed anyway.
    const uint64_t gen = generation.load() + 1;
    std::string err;
    auto next = buildServerSnapshot(cfg, sc, nullptr, gen, collect, &err);
    if (!next) {
        reindexing.store(false);
        return serializeResponse(
            makeError(req, ErrorCode::Internal, err));
    }
    holder.swap(next);
    generation.store(gen);
    swaps.add(1);
    reindexing.store(false);

    JsonValue result = JsonValue::object();
    result.set("generation", JsonValue::number(gen));
    result.set("benchmarks",
               JsonValue::number(
                   static_cast<uint64_t>(next->ds.benchmarks.size())));
    return serializeResponse(makeResponse(req, std::move(result)));
}

void
Server::Impl::flushClient(Connection &c)
{
    static util::Failpoint fp("serve.write");
    std::unique_lock<std::mutex> lk(c.mu);
    while (!c.out.empty()) {
        if (auto d = fp.eval()) {
            if (failDecisionFails(d)) {
                lk.unlock();
                quarantine(c);
                return;
            }
        }
        const ssize_t n = ::send(c.fd, c.out.data(), c.out.size(),
                                 MSG_NOSIGNAL);
        if (n > 0) {
            c.out.erase(0, static_cast<size_t>(n));
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
            return;   // kernel buffer full; POLLOUT will resume
        lk.unlock();
        quarantine(c);
        return;
    }
    if (c.closeAfterFlush && !c.busy) {
        static obs::Gauge open("serve.conn.open");
        open.add(-1);
        ::close(c.fd);
        c.fd = -1;
        c.dead = true;
    }
}

int
Server::Impl::run()
{
    using Clock = std::chrono::steady_clock;
    bool draining = false;
    Clock::time_point drainStart{};
    const bool periodicMetrics =
        !opt.metricsPath.empty() && opt.metricsIntervalMs > 0;
    Clock::time_point lastFlush = Clock::now();

    for (;;) {
        if (stopping.load() && !draining) {
            draining = true;
            drainStart = Clock::now();
            if (listenFd >= 0) {
                ::close(listenFd);
                listenFd = -1;
            }
        }
        if (draining) {
            bool pending = false;
            for (const auto &c : conns) {
                if (c->dead)
                    continue;
                std::lock_guard<std::mutex> lk(c->mu);
                if (c->busy || !c->out.empty())
                    pending = true;
            }
            const auto waited =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    Clock::now() - drainStart)
                    .count();
            if (!pending ||
                waited >= static_cast<int64_t>(opt.drainDeadlineMs)) {
                closeAllConnections();
                return 0;
            }
        }

        std::vector<pollfd> fds;
        std::vector<Connection *> who;
        fds.push_back({wakeRead, POLLIN, 0});
        who.push_back(nullptr);
        if (listenFd >= 0) {
            fds.push_back({listenFd, POLLIN, 0});
            who.push_back(nullptr);
        }
        for (auto &c : conns) {
            if (c->dead || c->fd < 0)
                continue;
            short ev = 0;
            // Reading while busy would let one client queue unbounded
            // work; its bytes stay in the kernel until the reply goes.
            if (!c->busy && !c->closeAfterFlush && !c->sawEof)
                ev |= POLLIN;
            {
                std::lock_guard<std::mutex> lk(c->mu);
                if (!c->out.empty() || (c->closeAfterFlush && !c->busy))
                    ev |= POLLOUT;
            }
            if (ev == 0)
                continue;
            fds.push_back({c->fd, ev, 0});
            who.push_back(c.get());
        }

        int timeoutMs = draining ? 20 : 1000;
        if (periodicMetrics && !draining) {
            const auto sinceFlush =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    Clock::now() - lastFlush)
                    .count();
            const int64_t untilFlush =
                static_cast<int64_t>(opt.metricsIntervalMs) - sinceFlush;
            if (untilFlush <= 0) {
                // Best-effort: a transiently unwritable sink skips one
                // interval rather than killing the daemon.
                obs::writeMetricsJson(opt.metricsPath);
                lastFlush = Clock::now();
            } else if (untilFlush < timeoutMs) {
                timeoutMs = static_cast<int>(untilFlush);
            }
        }
        const int rc = ::poll(fds.data(), fds.size(), timeoutMs);
        if (rc < 0 && errno != EINTR) {
            closeAllConnections();
            return 1;
        }

        if (rc > 0) {
            for (size_t i = 0; i < fds.size(); ++i) {
                if (fds[i].revents == 0)
                    continue;
                if (fds[i].fd == wakeRead) {
                    char buf[64];
                    while (::read(wakeRead, buf, sizeof(buf)) > 0) {
                    }
                    continue;
                }
                if (listenFd >= 0 && fds[i].fd == listenFd) {
                    acceptClients();
                    continue;
                }
                Connection *c = who[i];
                if (!c || c->dead)
                    continue;
                if (fds[i].revents & (POLLHUP | POLLERR)) {
                    // Peer reset. Anything readable is still drained
                    // below; a pure error means quarantine.
                    if (!(fds[i].revents & (POLLIN | POLLOUT))) {
                        quarantine(*c);
                        continue;
                    }
                }
                if (fds[i].revents & POLLIN)
                    readClient(*c);
                if (c->dead)
                    continue;
                if (fds[i].revents & POLLOUT)
                    flushClient(*c);
            }
        }

        // A worker finishing may have unblocked the next queued line.
        for (auto &c : conns) {
            if (!c->dead && c->fd >= 0) {
                dispatchLines(*c);
                flushClient(*c);
            }
        }
        conns.erase(
            std::remove_if(conns.begin(), conns.end(),
                           [](const std::unique_ptr<Connection> &c) {
                               return c->dead && !c->busy;
                           }),
            conns.end());
    }
}

Server::Server(ServerOptions opt,
               std::shared_ptr<const ServerSnapshot> initial,
               experiments::DatasetConfig cfg, SpaceChoice sc,
               CollectFn collect)
    : impl_(std::make_unique<Impl>(std::move(opt), std::move(initial),
                                   std::move(cfg), std::move(sc),
                                   std::move(collect)))
{
}

Server::~Server() = default;

bool
Server::start(std::string *err)
{
    return impl_->start(err);
}

std::string
Server::boundAddress() const
{
    return impl_->bound;
}

int
Server::run()
{
    return impl_->run();
}

void
Server::requestStop() noexcept
{
    impl_->stopping.store(true);
    impl_->wake();
}

std::shared_ptr<const ServerSnapshot>
Server::snapshot() const
{
    return impl_->holder.get();
}

} // namespace mica::service
