/**
 * @file
 * The reusable similarity-query engine: one immutable snapshot, one
 * execution path for every front end.
 *
 * Before this layer existed, each query was a one-shot CLI invocation
 * that re-read the profile store and index snapshot from disk inside
 * its verb handler. The engine splits that into:
 *
 *  - **ServerSnapshot** — everything a query needs (the collected
 *    dataset, the fingerprint index, the frozen space parameters),
 *    loaded once and immutable thereafter. Concurrent readers share
 *    it by shared_ptr; a re-index builds a *new* snapshot and swaps
 *    the pointer (see SnapshotHolder in server.hh), so readers never
 *    block and never observe a half-updated state.
 *
 *  - **executeRequest** — the one dispatch point for every protocol
 *    op. The daemon calls it per request line; `mica query` calls it
 *    once and exits; the CLI index verbs reuse the same underlying
 *    index calls. Same snapshot + same request = same response bytes,
 *    which is the CLI↔server byte-identity contract CI enforces.
 *
 * Snapshot construction reuses the persistent index snapshot when its
 * header key matches (probed once — the payload is only read when the
 * key already matches, never to *discover* a mismatch) and rebuilds
 * + persists it otherwise.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "experiments/experiments.hh"
#include "index/fingerprint_index.hh"
#include "service/protocol.hh"

namespace mica::pipeline
{
class ThreadPool;
} // namespace mica::pipeline

namespace mica::service
{

/** The fingerprint-space knobs, carried with "were they explicit". */
struct SpaceChoice
{
    std::string space = "mica";   ///< "mica", "hpc", or "key"
    size_t pca = 0;               ///< principal components (0 = none)

    /**
     * Whether either knob was given explicitly. When false, snapshot
     * opening adopts whatever space the on-disk index was built with,
     * so a key-space index is never silently answered — or
     * overwritten — in the default space.
     */
    bool given = false;
};

/** The dataset half of the index key (exactly the ProfileStore key). */
std::string datasetKeyPart(const experiments::DatasetConfig &cfg);

/** Canonical index-snapshot key: dataset key + space knobs. */
std::string indexKey(const experiments::DatasetConfig &cfg,
                     const std::string &space, size_t pca);

/**
 * Adopt the space/pca a stored index key carries into @p sc, unless
 * the caller already chose explicitly (sc->given). @return whether
 * the key parsed and was adopted.
 */
bool adoptSpaceFromKey(const std::string &storedKey, SpaceChoice *sc);

/** Build the fingerprint index for one space over a dataset. */
index::FingerprintIndex
indexFromDataset(const experiments::SuiteDataset &ds,
                 const std::string &space, size_t pca,
                 pipeline::ThreadPool *pool);

/**
 * Everything a query reads, frozen at load time. Immutable once
 * published: queries take a shared_ptr<const ServerSnapshot> and the
 * swap path never mutates a published snapshot.
 */
struct ServerSnapshot
{
    experiments::SuiteDataset ds;
    index::FingerprintIndex idx;
    std::string space;
    size_t pca = 0;
    std::string key;            ///< full index key this was built under

    /**
     * Population max pairwise fingerprint distance, precomputed so
     * the paper's 20%-of-max similarity threshold is one multiply at
     * query time.
     */
    double maxPairDist = 0.0;

    /** Monotonic swap counter; 0 = the snapshot loaded at startup. */
    uint64_t generation = 0;
};

/**
 * Dataset collection hook: the CLI passes its quarantine-reporting
 * wrapper; the default is plain experiments::collectSuiteDataset.
 */
using CollectFn =
    std::function<experiments::SuiteDataset(
        const experiments::DatasetConfig &)>;

/**
 * Load-or-build a complete snapshot: collect the dataset (profile
 * store hits make a warm start cheap), reuse the persistent index
 * snapshot when its probed key matches, rebuild + persist otherwise.
 * @param cfg collection config; an empty cacheDir defaults to
 *        ".mica-index" (the index needs a durable home)
 * @param sc space knobs; adopted from the stored snapshot when not
 *        explicitly given
 * @param err on failure, a one-line reason
 * @return the immutable snapshot, or nullptr (err set)
 */
std::shared_ptr<const ServerSnapshot>
buildServerSnapshot(const experiments::DatasetConfig &cfg,
                    SpaceChoice sc, pipeline::ThreadPool *pool,
                    uint64_t generation = 0,
                    const CollectFn &collect = {},
                    std::string *err = nullptr);

/**
 * Execute one parsed request against a snapshot and return the full
 * response envelope. Never throws: execution failures become
 * `internal` error envelopes. @p serverMode gates the daemon-only
 * ops (reindex) — the one-shot path answers them with `unavailable`.
 */
JsonValue executeRequest(const ServerSnapshot &snap, const Request &req,
                         bool serverMode = false);

/**
 * Parse + execute + serialize one request line: the exact
 * transformation the daemon applies per line, shared with the
 * one-shot CLI. @return the response line (no trailing newline).
 */
std::string executeLine(const ServerSnapshot &snap,
                        const std::string &line,
                        bool serverMode = false);

} // namespace mica::service
