/**
 * @file
 * The `mica serve` daemon: a concurrent similarity-query server over
 * line-delimited JSON.
 *
 * Threading model — one poll loop, N workers, zero reader locks:
 *
 *  - The **event loop** (Server::run, on the caller's thread) owns
 *    every socket: it accepts, reads request bytes, and flushes
 *    response bytes. Sockets are nonblocking; a self-pipe wakes the
 *    loop when a worker finishes or a stop is requested (the write
 *    end is async-signal-safe, so signal handlers may call
 *    requestStop directly).
 *
 *  - Complete request lines are handed to a ThreadPool (the PR-1
 *    pool). Each connection processes one request at a time (replies
 *    stay in request order per client); different connections execute
 *    concurrently. Workers never touch sockets — they compute the
 *    response string, append it to the connection's output buffer
 *    under its mutex, and wake the loop to flush.
 *
 *  - Queries read the current snapshot via SnapshotHolder::get(): an
 *    atomic shared_ptr load, no lock, never blocked by a writer. A
 *    `reindex` request builds a whole new ServerSnapshot on its
 *    worker (other workers keep answering from the old one) and
 *    publishes it with one atomic pointer swap — a reader sees the
 *    old snapshot or the new one, complete either way, never a mix.
 *
 * Failure containment: the serve.accept/read/write failpoints (and
 * real socket errors) quarantine exactly one connection — close it,
 * count it (serve.conn.quarantined), keep serving everyone else. A
 * request line that fails to parse gets an error *reply*, not a
 * dropped connection; a line that exceeds kMaxLineBytes gets a
 * line_too_long reply and then the connection is closed (the buffer
 * is the resource being protected).
 *
 * Shutdown (SIGINT/SIGTERM → requestStop): stop accepting, let
 * in-flight requests finish, flush every pending reply (bounded by
 * kDrainDeadlineMs), close, return 0.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "service/query_engine.hh"

namespace mica::service
{

/** One parsed listen/connect endpoint. */
struct SocketAddress
{
    bool isUnix = false;
    std::string path;          ///< unix: filesystem path
    std::string host;          ///< tcp: numeric host (default loopback)
    uint16_t port = 0;         ///< tcp: port (0 = ephemeral)
};

/**
 * Parse an address spec: "unix:PATH", "tcp:HOST:PORT", "tcp:PORT",
 * "HOST:PORT", "PORT", or a bare path containing '/' (unix).
 * @return false with *err naming the problem
 */
bool parseAddress(const std::string &spec, SocketAddress *out,
                  std::string *err);

/**
 * The one mutable cell of the service: the current snapshot pointer.
 * get() is an atomic load of a shared_ptr — wait-free for readers —
 * and swap() is an atomic store, so publication is a single pointer
 * move and old readers keep their (complete, immutable) snapshot
 * alive until they drop it.
 */
class SnapshotHolder
{
  public:
    explicit SnapshotHolder(
        std::shared_ptr<const ServerSnapshot> initial);

    std::shared_ptr<const ServerSnapshot> get() const;

    void swap(std::shared_ptr<const ServerSnapshot> next);

  private:
    // C++17: free atomic_load/atomic_store on shared_ptr (the
    // std::atomic<shared_ptr> specialization is C++20).
    std::shared_ptr<const ServerSnapshot> snap_;
};

/** Daemon knobs, all optional beyond the address. */
struct ServerOptions
{
    std::string address = "unix:mica.sock";
    size_t jobs = 0;               ///< worker threads (0 = hardware)
    size_t maxConnections = 256;   ///< accepted clients at once

    /** Drain budget for graceful shutdown, milliseconds. */
    uint64_t drainDeadlineMs = 5000;

    /**
     * Live-introspection sink: while serving, rewrite this file
     * (atomically) with obs::metricsJson() every metricsIntervalMs.
     * Empty path or zero interval disables the periodic flush; the
     * CLI's --metrics epilogue still writes the final state either
     * way.
     */
    std::string metricsPath;
    uint64_t metricsIntervalMs = 0;
};

class Server
{
  public:
    /**
     * @param opt      listen address and sizing
     * @param initial  the startup snapshot (generation 0)
     * @param cfg      collection config, kept for `reindex` rebuilds
     * @param sc       space knobs, kept for `reindex` rebuilds
     * @param collect  dataset-collection hook (CLI quarantine wrapper)
     */
    Server(ServerOptions opt,
           std::shared_ptr<const ServerSnapshot> initial,
           experiments::DatasetConfig cfg, SpaceChoice sc,
           CollectFn collect = {});
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind + listen. Separate from run() so callers learn the bound
     * address (ephemeral TCP ports, tests) before serving.
     * @return false with *err on bind/listen failure
     */
    bool start(std::string *err);

    /** Address actually bound ("unix:PATH" / "tcp:HOST:PORT"). */
    std::string boundAddress() const;

    /**
     * Serve until requestStop(). Blocks the calling thread (the CLI
     * runs this on main; tests run it on a std::thread).
     * @return 0 on clean drain, 1 when the listener died
     */
    int run();

    /**
     * Ask the loop to shut down gracefully. Async-signal-safe (one
     * write() to the self-pipe) and idempotent.
     */
    void requestStop() noexcept;

    /** Current snapshot accessor (tests; the loop uses it per request). */
    std::shared_ptr<const ServerSnapshot> snapshot() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace mica::service
