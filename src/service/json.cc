#include "service/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace mica::service
{

JsonValue
JsonValue::boolean(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::number(double d)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.num_ = d;
    return v;
}

JsonValue
JsonValue::number(int64_t i)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.num_ = static_cast<double>(i);
    v.isInt_ = true;
    v.int_ = i;
    return v;
}

JsonValue
JsonValue::number(uint64_t i)
{
    // Wire counts never approach 2^63; pin the cast so a future huge
    // value renders as a (lossy but parseable) double, not garbage.
    if (i > static_cast<uint64_t>(INT64_MAX))
        return number(static_cast<double>(i));
    return number(static_cast<int64_t>(i));
}

JsonValue
JsonValue::str(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.str_ = std::move(s);
    return v;
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
}

int64_t
JsonValue::asCount(int64_t fallback) const
{
    if (kind_ != Kind::Number)
        return fallback;
    if (isInt_)
        return int_ >= 0 ? int_ : fallback;
    if (!(num_ >= 0.0) || num_ != std::floor(num_) || num_ > 9.0e15)
        return fallback;
    return static_cast<int64_t>(num_);
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &m : members_) {
        if (m.first == key)
            return &m.second;
    }
    return nullptr;
}

JsonValue &
JsonValue::set(std::string key, JsonValue v)
{
    members_.emplace_back(std::move(key), std::move(v));
    return *this;
}

JsonValue &
JsonValue::push(JsonValue v)
{
    items_.push_back(std::move(v));
    return *this;
}

void
jsonEscape(const std::string &s, std::string &out)
{
    for (unsigned char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\b':
            out += "\\b";
            break;
        case '\f':
            out += "\\f";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
}

void
JsonValue::dumpTo(std::string &out) const
{
    switch (kind_) {
    case Kind::Null:
        out += "null";
        break;
    case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
    case Kind::Number: {
        char buf[32];
        if (isInt_) {
            const auto r =
                std::to_chars(buf, buf + sizeof(buf), int_);
            out.append(buf, r.ptr);
        } else if (!std::isfinite(num_)) {
            out += "null";
        } else {
            // Shortest round-trip form: the same double always
            // serializes to the same bytes, which is what makes the
            // CLI-vs-server byte-identity contract checkable.
            const auto r =
                std::to_chars(buf, buf + sizeof(buf), num_);
            out.append(buf, r.ptr);
        }
        break;
    }
    case Kind::String:
        out += '"';
        jsonEscape(str_, out);
        out += '"';
        break;
    case Kind::Array: {
        out += '[';
        bool first = true;
        for (const auto &v : items_) {
            if (!first)
                out += ',';
            first = false;
            v.dumpTo(out);
        }
        out += ']';
        break;
    }
    case Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto &m : members_) {
            if (!first)
                out += ',';
            first = false;
            out += '"';
            jsonEscape(m.first, out);
            out += "\":";
            m.second.dumpTo(out);
        }
        out += '}';
        break;
    }
    }
}

std::string
JsonValue::dump() const
{
    std::string out;
    dumpTo(out);
    return out;
}

namespace
{

/** Recursive-descent parser over one in-memory document. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *err)
        : text_(text), err_(err)
    {
    }

    bool
    parse(JsonValue *out)
    {
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    /** Nesting guard: a hostile line of '[[[[…' must not overflow. */
    static constexpr int kMaxDepth = 64;

    bool
    fail(const char *reason)
    {
        if (err_) {
            *err_ = std::string(reason) + " at byte " +
                std::to_string(pos_);
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        const size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return fail("invalid literal");
        pos_ += n;
        return true;
    }

    bool
    parseValue(JsonValue *out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
        case 'n':
            if (!literal("null"))
                return false;
            *out = JsonValue::null();
            return true;
        case 't':
            if (!literal("true"))
                return false;
            *out = JsonValue::boolean(true);
            return true;
        case 'f':
            if (!literal("false"))
                return false;
            *out = JsonValue::boolean(false);
            return true;
        case '"':
            return parseString(out);
        case '[':
            return parseArray(out, depth);
        case '{':
            return parseObject(out, depth);
        default:
            return parseNumber(out);
        }
    }

    bool
    parseHex4(uint32_t *cp)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_ + static_cast<size_t>(i)];
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<uint32_t>(c - 'A' + 10);
            else
                return fail("bad \\u escape digit");
        }
        pos_ += 4;
        *cp = v;
        return true;
    }

    void
    appendUtf8(std::string &s, uint32_t cp)
    {
        if (cp < 0x80) {
            s += static_cast<char>(cp);
        } else if (cp < 0x800) {
            s += static_cast<char>(0xC0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            s += static_cast<char>(0xE0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            s += static_cast<char>(0xF0 | (cp >> 18));
            s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool
    parseStringInto(std::string *s)
    {
        ++pos_; // opening quote
        for (;;) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            const unsigned char c =
                static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                *s += static_cast<char>(c);
                ++pos_;
                continue;
            }
            ++pos_;
            if (pos_ >= text_.size())
                return fail("truncated escape");
            const char e = text_[pos_++];
            switch (e) {
            case '"':
                *s += '"';
                break;
            case '\\':
                *s += '\\';
                break;
            case '/':
                *s += '/';
                break;
            case 'b':
                *s += '\b';
                break;
            case 'f':
                *s += '\f';
                break;
            case 'n':
                *s += '\n';
                break;
            case 'r':
                *s += '\r';
                break;
            case 't':
                *s += '\t';
                break;
            case 'u': {
                uint32_t cp = 0;
                if (!parseHex4(&cp))
                    return false;
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // Surrogate pair.
                    if (text_.compare(pos_, 2, "\\u") != 0)
                        return fail("unpaired surrogate");
                    pos_ += 2;
                    uint32_t lo = 0;
                    if (!parseHex4(&lo))
                        return false;
                    if (lo < 0xDC00 || lo > 0xDFFF)
                        return fail("bad low surrogate");
                    cp = 0x10000 + ((cp - 0xD800) << 10) +
                        (lo - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    return fail("unpaired surrogate");
                }
                appendUtf8(*s, cp);
                break;
            }
            default:
                return fail("unknown escape");
            }
        }
    }

    bool
    parseString(JsonValue *out)
    {
        std::string s;
        if (!parseStringInto(&s))
            return false;
        *out = JsonValue::str(std::move(s));
        return true;
    }

    bool
    parseNumber(JsonValue *out)
    {
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        bool sawDigit = false;
        while (pos_ < text_.size() && text_[pos_] >= '0' &&
               text_[pos_] <= '9') {
            ++pos_;
            sawDigit = true;
        }
        if (!sawDigit) {
            pos_ = start;
            return fail("invalid value");
        }
        // "-012" is not JSON: a leading zero takes the whole integer
        // part.
        const size_t intDigits =
            pos_ - start - (text_[start] == '-' ? 1 : 0);
        const char firstDigit =
            text_[start + (text_[start] == '-' ? 1 : 0)];
        if (intDigits > 1 && firstDigit == '0') {
            pos_ = start;
            return fail("leading zero in number");
        }
        bool integral = true;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            integral = false;
            ++pos_;
            bool frac = false;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9') {
                ++pos_;
                frac = true;
            }
            if (!frac)
                return fail("missing fraction digits");
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            integral = false;
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            bool exp = false;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9') {
                ++pos_;
                exp = true;
            }
            if (!exp)
                return fail("missing exponent digits");
        }
        const std::string tok = text_.substr(start, pos_ - start);
        if (integral) {
            int64_t iv = 0;
            const auto r = std::from_chars(
                tok.data(), tok.data() + tok.size(), iv);
            if (r.ec == std::errc() &&
                r.ptr == tok.data() + tok.size()) {
                *out = JsonValue::number(iv);
                return true;
            }
            // Out of int64 range: fall through to double.
        }
        double dv = 0.0;
        const auto r =
            std::from_chars(tok.data(), tok.data() + tok.size(), dv);
        if (r.ec != std::errc() || r.ptr != tok.data() + tok.size())
            return fail("unparseable number");
        *out = JsonValue::number(dv);
        return true;
    }

    bool
    parseArray(JsonValue *out, int depth)
    {
        ++pos_; // '['
        *out = JsonValue::array();
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            JsonValue v;
            skipWs();
            if (!parseValue(&v, depth + 1))
                return false;
            out->push(std::move(v));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseObject(JsonValue *out, int depth)
    {
        ++pos_; // '{'
        *out = JsonValue::object();
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected member key");
            std::string key;
            if (!parseStringInto(&key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            skipWs();
            JsonValue v;
            if (!parseValue(&v, depth + 1))
                return false;
            out->set(std::move(key), std::move(v));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    const std::string &text_;
    std::string *err_;
    size_t pos_ = 0;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue *out, std::string *err)
{
    Parser p(text, err);
    return p.parse(out);
}

} // namespace mica::service
