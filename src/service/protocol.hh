/**
 * @file
 * The mica service wire protocol: line-delimited JSON requests and
 * responses.
 *
 * One request is one '\n'-terminated JSON object; one response is one
 * '\n'-terminated JSON object. The same request always yields the
 * same response bytes whether it is executed by the daemon (`mica
 * serve`) or by the one-shot CLI (`mica query`), because both funnel
 * through service::executeRequest and the canonical JSON serializer —
 * CI cmp's the two outputs.
 *
 * Request:  {"op":"knn","bench":"SPEC2000/gzip.graphic","k":5}
 *           optional "id": any JSON value, echoed verbatim in the
 *           response so pipelined clients can match replies.
 * Success:  {"id":...,"ok":true,"op":"knn","result":{...}}
 * Failure:  {"id":...,"ok":false,"error":{"code":"...","message":"..."}}
 *
 * Error codes are a closed set (see ErrorCode): scripts branch on the
 * code, humans read the message. A request that fails to parse still
 * gets a response (code bad_json / line_too_long) — the server never
 * silently drops a line, and never crashes on one.
 */

#pragma once

#include <cstdint>
#include <string>

#include "service/json.hh"

namespace mica::service
{

/**
 * Upper bound on one request line (bytes, newline included). A line
 * that grows past this without a newline gets a line_too_long error
 * reply and the connection is closed — an unbounded buffer per
 * client is a memory-exhaustion vector.
 */
constexpr size_t kMaxLineBytes = 1 << 20;

/** The closed set of protocol error codes. */
enum class ErrorCode
{
    BadJson,        ///< the line is not a JSON object
    BadRequest,     ///< a field is missing, mistyped, or out of range
    UnknownOp,      ///< "op" names no query
    UnknownBench,   ///< the named benchmark is not in the snapshot
    LineTooLong,    ///< request exceeded kMaxLineBytes
    Unavailable,    ///< server-only op asked of the one-shot CLI
    Internal,       ///< query execution threw
};

/** @return the canonical wire string for an error code. */
const char *errorCodeName(ErrorCode code);

/** The query kinds the engine answers. */
enum class Op
{
    Ping,
    Stats,
    Profile,
    Knn,
    Radius,
    Redundant,
    Suites,
    Reindex,   ///< daemon-only: background rebuild + snapshot swap
};

/** @return the wire name of an op ("knn", "suites", ...). */
const char *opName(Op op);

/** One parsed, validated request. */
struct Request
{
    Op op = Op::Ping;
    JsonValue id;              ///< echoed verbatim; Null when absent
    bool hasId = false;
    std::string bench;         ///< profile/knn/radius
    std::string space;         ///< profile: "mica" (default) or "hpc"
    std::string suite;         ///< suites: optional filter
    size_t k = 10;             ///< knn
    double radius = 0.0;       ///< radius
    size_t top = 10;           ///< redundant
    bool brute = false;        ///< knn/radius/redundant reference path
};

/**
 * Parse and validate one request line (without the trailing newline).
 * On failure the returned false comes with *code and *message filled so
 * the caller can build the error reply; *out is only meaningful on
 * success. The id (when present and well-formed) is preserved in
 * *out even on failure, so error replies still echo it.
 */
bool parseRequest(const std::string &line, Request *out,
                  ErrorCode *code, std::string *message);

/** Build the success envelope around an op's result object. */
JsonValue makeResponse(const Request &req, JsonValue result);

/** Build the failure envelope. */
JsonValue makeError(const Request &req, ErrorCode code,
                    const std::string &message);

/** Serialize an envelope to its canonical single line (no newline). */
std::string serializeResponse(const JsonValue &response);

} // namespace mica::service
