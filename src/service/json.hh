/**
 * @file
 * Minimal JSON document model for the service wire protocol.
 *
 * The daemon and the one-shot CLI path must produce *byte-identical*
 * response lines for the same query, so serialization has to be
 * canonical: object members keep insertion order, numbers render via
 * std::to_chars (shortest round-trip form — the same bits always
 * produce the same text), strings escape exactly the characters JSON
 * requires, and there is no whitespace. Parsing is strict — anything
 * RFC 8259 rejects is an error naming the byte offset — because a
 * lenient reader on a network socket is how protocol drift starts.
 *
 * This is deliberately a small DOM, not a streaming parser: protocol
 * lines are bounded (service::kMaxLineBytes), so documents are tiny
 * and clarity beats throughput here. The hot path of a query is the
 * index lookup, not the envelope.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace mica::service
{

class JsonValue;

/** Object members as an insertion-ordered (key, value) sequence. */
using JsonMembers = std::vector<std::pair<std::string, JsonValue>>;

class JsonValue
{
  public:
    enum class Kind : uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;

    static JsonValue null() { return JsonValue(); }
    static JsonValue boolean(bool b);
    static JsonValue number(double v);
    static JsonValue number(int64_t v);
    static JsonValue number(uint64_t v);
    static JsonValue str(std::string s);
    static JsonValue array();
    static JsonValue object();

    Kind kind() const { return kind_; }

    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { return bool_; }

    double asDouble() const { return num_; }

    /**
     * @return the number as a non-negative integer; @p fallback when
     * this is not a number, is negative, is fractional, or exceeds
     * what a double can represent exactly. Protocol fields (k, top,
     * id) come through here so a malformed count can never silently
     * truncate to something plausible.
     */
    int64_t asCount(int64_t fallback = -1) const;

    const std::string &asString() const { return str_; }

    const std::vector<JsonValue> &items() const { return items_; }

    const JsonMembers &members() const { return members_; }

    /** @return member by key, or nullptr (objects only). */
    const JsonValue *find(const std::string &key) const;

    /** Append a member (objects only; duplicate keys are a bug). */
    JsonValue &set(std::string key, JsonValue v);

    /** Append an element (arrays only). */
    JsonValue &push(JsonValue v);

    /**
     * Serialize canonically: no whitespace, insertion-order members,
     * shortest-round-trip numbers. NaN/Inf (which JSON cannot carry)
     * render as null — the engine never produces them, but a
     * serializer that can emit unparseable output is a latent bug.
     */
    std::string dump() const;

    void dumpTo(std::string &out) const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    /** Integral numbers remember their text so 2^53+ survives. */
    bool isInt_ = false;
    int64_t int_ = 0;
    std::string str_;
    std::vector<JsonValue> items_;
    JsonMembers members_;
};

/**
 * Parse one JSON document. The whole input must be consumed (trailing
 * garbage is an error); leading/trailing ASCII whitespace is allowed.
 * @param err on failure, a one-line reason with the byte offset
 * @return the document, or no value (err set)
 */
bool parseJson(const std::string &text, JsonValue *out,
               std::string *err = nullptr);

/** Append @p s to @p out with JSON string escaping (no quotes). */
void jsonEscape(const std::string &s, std::string &out);

} // namespace mica::service
