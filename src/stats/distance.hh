/**
 * @file
 * Condensed pairwise Euclidean distance matrix over dataset rows.
 *
 * The paper's core quantity is the Euclidean distance between every pair
 * of benchmarks ("benchmark tuples") in a normalized workload space; with
 * 122 benchmarks that is C(122,2) = 7381 tuples. DistanceMatrix stores
 * the condensed upper triangle.
 *
 * Construction can fan out across a pipeline::ThreadPool: rows are
 * partitioned into blocks of roughly equal pair counts and every block
 * writes its own contiguous slice of the condensed vector, so the
 * result is bit-identical to the serial build for any worker count.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "stats/matrix.hh"

namespace mica::pipeline
{
class ThreadPool;
} // namespace mica::pipeline

namespace mica
{

/** Pairwise Euclidean distances between the rows of a Matrix. */
class DistanceMatrix
{
  public:
    DistanceMatrix() = default;

    /** Compute all pairwise distances over full rows. */
    explicit DistanceMatrix(const Matrix &m,
                            pipeline::ThreadPool *pool = nullptr);

    /**
     * Compute pairwise distances using only a subset of columns; used by
     * the feature-selection methods to score reduced spaces.
     */
    DistanceMatrix(const Matrix &m, const std::vector<size_t> &cols,
                   pipeline::ThreadPool *pool = nullptr);

    /** @return number of rows (benchmarks) n. */
    size_t numItems() const { return n_; }

    /** @return number of pairs n(n-1)/2. */
    size_t numPairs() const { return d_.size(); }

    /** @return distance between items i and j (i != j). */
    double
    at(size_t i, size_t j) const
    {
        if (i == j)
            return 0.0;
        if (i > j)
            std::swap(i, j);
        return d_[pairIndex(i, j)];
    }

    /** @return condensed distance vector (row-major upper triangle). */
    const std::vector<double> &condensed() const { return d_; }

    /** @return largest pairwise distance (0 for n < 2). */
    double maxDistance() const;

    /** @return condensed index of pair (i, j), i < j. */
    size_t
    pairIndex(size_t i, size_t j) const
    {
        // Row-major upper triangle: offset of row i plus (j - i - 1).
        return i * n_ - i * (i + 1) / 2 + (j - i - 1);
    }

    /**
     * @return the (i, j) pair for a condensed index.
     * @throw std::out_of_range for idx >= numPairs() — which covers the
     *        degenerate n <= 1 matrices, whose pair set is empty.
     */
    std::pair<size_t, size_t> pairOf(size_t idx) const;

  private:
    void build(const Matrix &m, const size_t *cols, size_t numCols,
               pipeline::ThreadPool *pool);

    size_t n_ = 0;
    std::vector<double> d_;
};

} // namespace mica
