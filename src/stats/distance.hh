/**
 * @file
 * Condensed pairwise Euclidean distance matrix over dataset rows.
 *
 * The paper's core quantity is the Euclidean distance between every pair
 * of benchmarks ("benchmark tuples") in a normalized workload space; with
 * 122 benchmarks that is C(122,2) = 7381 tuples. DistanceMatrix stores
 * the condensed upper triangle.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "stats/matrix.hh"

namespace mica
{

/** Pairwise Euclidean distances between the rows of a Matrix. */
class DistanceMatrix
{
  public:
    DistanceMatrix() = default;

    /** Compute all pairwise distances over full rows. */
    explicit DistanceMatrix(const Matrix &m);

    /**
     * Compute pairwise distances using only a subset of columns; used by
     * the feature-selection methods to score reduced spaces.
     */
    DistanceMatrix(const Matrix &m, const std::vector<size_t> &cols);

    /** @return number of rows (benchmarks) n. */
    size_t numItems() const { return n_; }

    /** @return number of pairs n(n-1)/2. */
    size_t numPairs() const { return d_.size(); }

    /** @return distance between items i and j (i != j). */
    double
    at(size_t i, size_t j) const
    {
        if (i == j)
            return 0.0;
        if (i > j)
            std::swap(i, j);
        return d_[pairIndex(i, j)];
    }

    /** @return condensed distance vector (row-major upper triangle). */
    const std::vector<double> &condensed() const { return d_; }

    /** @return largest pairwise distance (0 for n < 2). */
    double maxDistance() const;

    /** @return condensed index of pair (i, j), i < j. */
    size_t
    pairIndex(size_t i, size_t j) const
    {
        // Row-major upper triangle: offset of row i plus (j - i - 1).
        return i * n_ - i * (i + 1) / 2 + (j - i - 1);
    }

    /** @return the (i, j) pair for a condensed index. */
    std::pair<size_t, size_t> pairOf(size_t idx) const;

  private:
    size_t n_ = 0;
    std::vector<double> d_;
};

} // namespace mica
