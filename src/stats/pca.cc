#include "stats/pca.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mica
{

namespace
{

/**
 * Cyclic Jacobi eigensolver for symmetric matrices. Rotates away
 * off-diagonal mass until convergence; robust and exact enough for the
 * <= 47x47 matrices used here.
 */
void
jacobiEigen(Matrix &a, Matrix &v, std::vector<double> &eig)
{
    const size_t n = a.rows();
    v = Matrix(n, n, 0.0);
    for (size_t i = 0; i < n; ++i)
        v.at(i, i) = 1.0;

    for (int sweep = 0; sweep < 100; ++sweep) {
        double off = 0.0;
        for (size_t p = 0; p < n; ++p)
            for (size_t q = p + 1; q < n; ++q)
                off += a.at(p, q) * a.at(p, q);
        if (off < 1e-18)
            break;
        for (size_t p = 0; p < n; ++p) {
            for (size_t q = p + 1; q < n; ++q) {
                const double apq = a.at(p, q);
                if (std::fabs(apq) < 1e-300)
                    continue;
                const double app = a.at(p, p), aqq = a.at(q, q);
                const double theta = (aqq - app) / (2.0 * apq);
                const double t = (theta >= 0 ? 1.0 : -1.0) /
                    (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;
                for (size_t k = 0; k < n; ++k) {
                    const double akp = a.at(k, p), akq = a.at(k, q);
                    a.at(k, p) = c * akp - s * akq;
                    a.at(k, q) = s * akp + c * akq;
                }
                for (size_t k = 0; k < n; ++k) {
                    const double apk = a.at(p, k), aqk = a.at(q, k);
                    a.at(p, k) = c * apk - s * aqk;
                    a.at(q, k) = s * apk + c * aqk;
                }
                for (size_t k = 0; k < n; ++k) {
                    const double vkp = v.at(k, p), vkq = v.at(k, q);
                    v.at(k, p) = c * vkp - s * vkq;
                    v.at(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }
    eig.resize(n);
    for (size_t i = 0; i < n; ++i)
        eig[i] = a.at(i, i);
}

} // namespace

double
PcaResult::varianceExplained(size_t k) const
{
    double total = 0.0, head = 0.0;
    for (size_t i = 0; i < eigenvalues.size(); ++i) {
        total += std::max(0.0, eigenvalues[i]);
        if (i < k)
            head += std::max(0.0, eigenvalues[i]);
    }
    return total > 0.0 ? head / total : 0.0;
}

Matrix
PcaResult::project(const Matrix &m, size_t k) const
{
    k = std::min(k, components.rows());
    Matrix out(m.rows(), k);
    for (size_t r = 0; r < m.rows(); ++r) {
        for (size_t pc = 0; pc < k; ++pc) {
            double s = 0.0;
            for (size_t c = 0; c < m.cols(); ++c)
                s += (m.at(r, c) - colMeans[c]) * components.at(pc, c);
            out.at(r, pc) = s;
        }
    }
    out.rowNames = m.rowNames;
    return out;
}

PcaResult
pcaFit(const Matrix &m)
{
    const size_t n = m.rows(), d = m.cols();
    PcaResult res;
    res.colMeans.resize(d, 0.0);
    for (size_t c = 0; c < d; ++c) {
        double s = 0.0;
        for (size_t r = 0; r < n; ++r)
            s += m.at(r, c);
        res.colMeans[c] = n ? s / static_cast<double>(n) : 0.0;
    }

    // Covariance matrix (population normalization).
    Matrix cov(d, d, 0.0);
    for (size_t i = 0; i < d; ++i) {
        for (size_t j = i; j < d; ++j) {
            double s = 0.0;
            for (size_t r = 0; r < n; ++r) {
                s += (m.at(r, i) - res.colMeans[i]) *
                     (m.at(r, j) - res.colMeans[j]);
            }
            const double c = n ? s / static_cast<double>(n) : 0.0;
            cov.at(i, j) = c;
            cov.at(j, i) = c;
        }
    }

    Matrix vecs;
    std::vector<double> eig;
    jacobiEigen(cov, vecs, eig);

    // Sort eigenpairs by descending eigenvalue.
    std::vector<size_t> order(d);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return eig[a] > eig[b]; });

    res.eigenvalues.resize(d);
    res.components = Matrix(d, d);
    for (size_t k = 0; k < d; ++k) {
        res.eigenvalues[k] = eig[order[k]];
        for (size_t c = 0; c < d; ++c)
            res.components.at(k, c) = vecs.at(c, order[k]);
    }
    return res;
}

} // namespace mica
