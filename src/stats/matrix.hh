/**
 * @file
 * Row-major dataset matrix with named rows (benchmarks) and columns
 * (characteristics). The workload spaces of the paper are instances of
 * this: 122 rows x 47 columns (MICA) and 122 rows x 7 columns (HPC).
 */

#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace mica
{

/** Dense row-major matrix of doubles with optional row/column names. */
class Matrix
{
  public:
    Matrix() = default;

    Matrix(size_t rows, size_t cols, double fill = 0.0)
        : rows_(rows), cols_(cols), data_(rows * cols, fill)
    {}

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    double &at(size_t r, size_t c) { return data_[r * cols_ + c]; }
    double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

    double &operator()(size_t r, size_t c) { return at(r, c); }
    double operator()(size_t r, size_t c) const { return at(r, c); }

    /** @return pointer to the start of row r. */
    const double *row(size_t r) const { return data_.data() + r * cols_; }
    double *row(size_t r) { return data_.data() + r * cols_; }

    /** @return copy of row r as a vector. */
    std::vector<double>
    rowVec(size_t r) const
    {
        return {row(r), row(r) + cols_};
    }

    /** @return copy of column c as a vector. */
    std::vector<double>
    colVec(size_t c) const
    {
        std::vector<double> v(rows_);
        for (size_t r = 0; r < rows_; ++r)
            v[r] = at(r, c);
        return v;
    }

    /** Append a row; the first appended row fixes the column count. */
    void
    appendRow(const std::vector<double> &v)
    {
        if (rows_ == 0 && cols_ == 0)
            cols_ = v.size();
        if (v.size() != cols_)
            throw std::invalid_argument("appendRow: column mismatch");
        data_.insert(data_.end(), v.begin(), v.end());
        ++rows_;
    }

    /** @return a new matrix containing only the given columns, in order. */
    Matrix
    selectCols(const std::vector<size_t> &cols) const
    {
        Matrix m(rows_, cols.size());
        for (size_t r = 0; r < rows_; ++r)
            for (size_t j = 0; j < cols.size(); ++j)
                m.at(r, j) = at(r, cols[j]);
        if (!colNames.empty()) {
            m.colNames.reserve(cols.size());
            for (size_t c : cols)
                m.colNames.push_back(colNames[c]);
        }
        m.rowNames = rowNames;
        return m;
    }

    std::vector<std::string> rowNames;
    std::vector<std::string> colNames;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<double> data_;
};

} // namespace mica
