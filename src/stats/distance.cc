#include "stats/distance.hh"

#include <cmath>

namespace mica
{

DistanceMatrix::DistanceMatrix(const Matrix &m) : n_(m.rows())
{
    d_.reserve(n_ * (n_ - 1) / 2);
    for (size_t i = 0; i < n_; ++i) {
        const double *ri = m.row(i);
        for (size_t j = i + 1; j < n_; ++j) {
            const double *rj = m.row(j);
            double s = 0.0;
            for (size_t c = 0; c < m.cols(); ++c) {
                const double dlt = ri[c] - rj[c];
                s += dlt * dlt;
            }
            d_.push_back(std::sqrt(s));
        }
    }
}

DistanceMatrix::DistanceMatrix(const Matrix &m,
                               const std::vector<size_t> &cols)
    : n_(m.rows())
{
    d_.reserve(n_ * (n_ - 1) / 2);
    for (size_t i = 0; i < n_; ++i) {
        const double *ri = m.row(i);
        for (size_t j = i + 1; j < n_; ++j) {
            const double *rj = m.row(j);
            double s = 0.0;
            for (size_t c : cols) {
                const double dlt = ri[c] - rj[c];
                s += dlt * dlt;
            }
            d_.push_back(std::sqrt(s));
        }
    }
}

double
DistanceMatrix::maxDistance() const
{
    double mx = 0.0;
    for (double v : d_)
        mx = std::max(mx, v);
    return mx;
}

std::pair<size_t, size_t>
DistanceMatrix::pairOf(size_t idx) const
{
    // Walk rows of the condensed triangle; n is small (hundreds).
    size_t i = 0;
    size_t rowLen = n_ - 1;
    while (idx >= rowLen) {
        idx -= rowLen;
        ++i;
        --rowLen;
    }
    return {i, i + 1 + idx};
}

} // namespace mica
