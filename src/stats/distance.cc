#include "stats/distance.hh"

#include <cmath>
#include <stdexcept>

#include "pipeline/thread_pool.hh"

namespace mica
{

namespace
{

/**
 * Partition rows 0..n-1 into contiguous blocks of roughly equal pair
 * counts (row i owns n-1-i pairs, so equal *row* counts would leave the
 * first block with almost half the work). Returns block boundaries:
 * block b covers rows [cuts[b], cuts[b+1]).
 */
std::vector<size_t>
rowCuts(size_t n, size_t blocks)
{
    const size_t totalPairs = n * (n - 1) / 2;
    std::vector<size_t> cuts;
    cuts.push_back(0);
    size_t acc = 0;
    for (size_t i = 0; i < n && cuts.size() < blocks; ++i) {
        acc += n - 1 - i;
        if (acc * blocks >= totalPairs * cuts.size())
            cuts.push_back(i + 1);
    }
    if (cuts.back() != n)
        cuts.push_back(n);
    return cuts;
}

} // namespace

DistanceMatrix::DistanceMatrix(const Matrix &m, pipeline::ThreadPool *pool)
    : n_(m.rows())
{
    build(m, nullptr, m.cols(), pool);
}

DistanceMatrix::DistanceMatrix(const Matrix &m,
                               const std::vector<size_t> &cols,
                               pipeline::ThreadPool *pool)
    : n_(m.rows())
{
    build(m, cols.data(), cols.size(), pool);
}

void
DistanceMatrix::build(const Matrix &m, const size_t *cols, size_t numCols,
                      pipeline::ThreadPool *pool)
{
    if (n_ < 2)
        return;
    d_.resize(n_ * (n_ - 1) / 2);

    // Each block owns a contiguous row range and therefore a contiguous
    // slice of the condensed vector starting at pairIndex(i0, i0 + 1);
    // every element is computed exactly as in the serial double loop.
    auto fillRows = [&](size_t r0, size_t r1) {
        size_t p = pairIndex(r0, r0 + 1);
        for (size_t i = r0; i < r1; ++i) {
            const double *ri = m.row(i);
            for (size_t j = i + 1; j < n_; ++j, ++p) {
                const double *rj = m.row(j);
                double s = 0.0;
                if (cols) {
                    for (size_t c = 0; c < numCols; ++c) {
                        const double dlt = ri[cols[c]] - rj[cols[c]];
                        s += dlt * dlt;
                    }
                } else {
                    for (size_t c = 0; c < numCols; ++c) {
                        const double dlt = ri[c] - rj[c];
                        s += dlt * dlt;
                    }
                }
                d_[p] = std::sqrt(s);
            }
        }
    };

    const size_t workers = pool ? pool->workerCount() : 1;
    if (workers <= 1) {
        fillRows(0, n_);
        return;
    }
    const std::vector<size_t> cuts = rowCuts(n_, workers * 4);
    pipeline::parallelBlocks(pool, cuts.size() - 1, [&](size_t b) {
        fillRows(cuts[b], cuts[b + 1]);
    });
}

double
DistanceMatrix::maxDistance() const
{
    double mx = 0.0;
    for (double v : d_)
        mx = std::max(mx, v);
    return mx;
}

std::pair<size_t, size_t>
DistanceMatrix::pairOf(size_t idx) const
{
    // An index past the condensed triangle would underflow rowLen and
    // walk unbounded; reject it (this also covers n <= 1, whose pair
    // set is empty).
    if (idx >= d_.size())
        throw std::out_of_range("DistanceMatrix::pairOf: index " +
                                std::to_string(idx) + " >= " +
                                std::to_string(d_.size()) + " pairs");
    // Walk rows of the condensed triangle; n is small (hundreds).
    size_t i = 0;
    size_t rowLen = n_ - 1;
    while (idx >= rowLen) {
        idx -= rowLen;
        ++i;
        --rowLen;
    }
    return {i, i + 1 + idx};
}

} // namespace mica
