/**
 * @file
 * Small deterministic random number generator.
 *
 * All stochastic components in the repo (genetic algorithm, k-means
 * seeding, synthetic workload inputs) use this generator with explicit
 * seeds so every experiment is exactly reproducible.
 */

#pragma once

#include <cmath>
#include <cstdint>

namespace mica
{

/** xorshift64* generator with splitmix64 seeding. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 1) { reseed(seed); }

    /** Re-seed the generator (seed 0 is remapped to a nonzero state). */
    void
    reseed(uint64_t seed)
    {
        // splitmix64 scrambles weak seeds into a good initial state.
        uint64_t z = seed + 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        state_ = (z ^ (z >> 31)) | 1ull;
        haveGauss_ = false;
    }

    /** @return next raw 64-bit value. */
    uint64_t
    next()
    {
        state_ ^= state_ >> 12;
        state_ ^= state_ << 25;
        state_ ^= state_ >> 27;
        return state_ * 0x2545f4914f6cdd1dull;
    }

    /** @return uniform double in [0, 1). */
    double unit() { return (next() >> 11) * (1.0 / 9007199254740992.0); }

    /** @return uniform integer in [0, n) (n must be > 0). */
    uint64_t below(uint64_t n) { return next() % n; }

    /** @return uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(
            static_cast<uint64_t>(hi - lo + 1)));
    }

    /** @return standard normal deviate (Box-Muller, cached pair). */
    double
    gauss()
    {
        if (haveGauss_) {
            haveGauss_ = false;
            return cachedGauss_;
        }
        double u1 = unit(), u2 = unit();
        while (u1 <= 1e-300)
            u1 = unit();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double t = 6.283185307179586 * u2;
        cachedGauss_ = r * std::sin(t);
        haveGauss_ = true;
        return r * std::cos(t);
    }

    /** @return true with probability p. */
    bool chance(double p) { return unit() < p; }

    /**
     * Derive a decorrelated seed for child stream @p stream of @p seed.
     *
     * Parallel work units (k-means restarts, per-k sweep fits) each get
     * their own generator seeded with childSeed(seed, index), so the
     * random sequence a unit consumes depends only on (seed, index) —
     * never on how many draws other units made or on which thread ran
     * first. That is what makes the parallel methodology engine
     * byte-identical to its serial counterpart.
     */
    static uint64_t
    childSeed(uint64_t seed, uint64_t stream)
    {
        // splitmix64 over seed advanced by (stream + 1) golden-gamma
        // steps; +1 keeps childSeed(s, 0) distinct from s itself.
        uint64_t z = seed + (stream + 1) * 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

  private:
    uint64_t state_ = 1;
    bool haveGauss_ = false;
    double cachedGauss_ = 0.0;
};

} // namespace mica
