/**
 * @file
 * K-means clustering with k-means++ seeding and a BIC model-selection
 * score, as used for Fig. 6 of the paper (cluster the benchmarks in the
 * GA-selected 8-D space; pick K by the BIC-within-90%-of-max rule).
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/matrix.hh"

namespace mica
{

/** Result of one k-means fit. */
struct KMeansResult
{
    size_t k = 0;
    std::vector<int> assignment;    ///< cluster id per row
    Matrix centroids;               ///< k x d centroid matrix
    double inertia = 0.0;           ///< sum of squared distances
    int iterations = 0;             ///< Lloyd iterations executed

    /** @return rows belonging to cluster c. */
    std::vector<size_t> members(size_t c) const;
};

/** Tuning knobs for kMeansFit. */
struct KMeansParams
{
    size_t k = 2;
    uint64_t seed = 42;
    int maxIters = 100;
    int restarts = 3;   ///< keep the best of this many seeded runs
};

/**
 * Fit k-means with k-means++ initialization and Lloyd iterations.
 * Deterministic given the seed. Empty clusters are re-seeded with the
 * point farthest from its centroid.
 */
KMeansResult kMeansFit(const Matrix &data, const KMeansParams &params);

/**
 * Bayesian Information Criterion of a k-means clustering under the
 * identical spherical Gaussian model of Pelleg & Moore (X-means), the
 * formulation referenced via SimPoint [18] in the paper. Larger is
 * better.
 *
 * @param varianceFloor lower bound on the shared variance estimate (in
 *        squared data units). Nonzero values model finite measurement
 *        resolution and prevent the likelihood from diverging on
 *        populations that contain (near-)duplicate points.
 */
double bicScore(const Matrix &data, const KMeansResult &res,
                double varianceFloor = 0.0);

/** Result of a BIC-driven sweep over K. */
struct BicSweepResult
{
    std::vector<double> bicByK;     ///< BIC score for K = 1..maxK
    std::vector<KMeansResult> fits; ///< fit for each K
    size_t chosenK = 1;             ///< smallest K within frac*max BIC
};

/**
 * Sweep K = 1..maxK and choose the smallest K whose BIC is at least
 * frac (default 0.9) of the maximum observed BIC, the selection rule
 * of Section VI. varianceFloor is forwarded to bicScore.
 */
BicSweepResult bicSweep(const Matrix &data, size_t maxK, uint64_t seed,
                        double frac = 0.9, double varianceFloor = 0.0);

} // namespace mica
