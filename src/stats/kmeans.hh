/**
 * @file
 * K-means clustering with k-means++ seeding and a BIC model-selection
 * score, as used for Fig. 6 of the paper (cluster the benchmarks in the
 * GA-selected 8-D space; pick K by the BIC-within-90%-of-max rule).
 *
 * Determinism contract: every stochastic entry point is a pure function
 * of (data, parameters, seed). Multi-restart fits give restart r its
 * own generator seeded with Rng::childSeed(seed, r), and the K sweep
 * flattens (k, restart) into independent Lloyd runs, so fanning them
 * across a pipeline::ThreadPool returns byte-identical results for any
 * worker count — the reduction (best inertia, ties to the lowest
 * restart index / smallest k) always happens in fixed order on the
 * calling thread.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/matrix.hh"

namespace mica::pipeline
{
class ThreadPool;
} // namespace mica::pipeline

namespace mica
{

class Rng;

/** Result of one k-means fit. */
struct KMeansResult
{
    size_t k = 0;
    std::vector<int> assignment;    ///< cluster id per row
    Matrix centroids;               ///< k x d centroid matrix
    double inertia = 0.0;           ///< sum of squared distances
    int iterations = 0;             ///< Lloyd iterations executed

    /** @return rows belonging to cluster c. */
    std::vector<size_t> members(size_t c) const;
};

/** Tuning knobs for kMeansFit. */
struct KMeansParams
{
    size_t k = 2;
    uint64_t seed = 42;
    int maxIters = 100;
    int restarts = 3;   ///< keep the best of this many seeded runs
};

/**
 * k-means++ seeding: spread initial centroids by D^2 sampling.
 * Exposed for the determinism tests; callers normally go through
 * kMeansFit. When floating-point rounding exhausts the sampling scan
 * without landing (or the total weight overflows to infinity), the
 * last row with nonzero weight is chosen — never a silently repeated
 * row 0, which could duplicate an existing centroid.
 */
Matrix kMeansSeedCentroids(const Matrix &data, size_t k, Rng &rng);

/**
 * Re-seed every empty cluster (counts[c] == 0) with the point farthest
 * from its currently assigned centroid, recomputed per empty cluster
 * and excluding points already handed out in this step — two clusters
 * emptying in the same Lloyd update must not both re-seed onto the
 * same point, which would leave them duplicated centroids forever.
 * Exposed for the regression tests; kMeansRunOnce calls it on every
 * update step.
 */
void kMeansReseedEmpty(const Matrix &data,
                       const std::vector<int> &assignment,
                       const std::vector<size_t> &counts,
                       Matrix &centroids);

/**
 * One seeded Lloyd run: k-means++ initialization from a generator
 * seeded with exactly @p streamSeed, then Lloyd iterations. This is
 * the unit of parallelism for restarts and BIC sweeps. Empty clusters
 * are re-seeded with the farthest-from-centroid points, each empty
 * cluster receiving a *distinct* point.
 */
KMeansResult kMeansRunOnce(const Matrix &data, size_t k,
                           uint64_t streamSeed, int maxIters = 100);

/**
 * Fit k-means with k-means++ initialization and Lloyd iterations,
 * keeping the best of params.restarts runs (lowest inertia, ties to
 * the lowest restart index). Restart r uses the RNG stream
 * Rng::childSeed(params.seed, r); with a pool the restarts run as
 * independent jobs, byte-identical to the serial loop.
 */
KMeansResult kMeansFit(const Matrix &data, const KMeansParams &params,
                       pipeline::ThreadPool *pool = nullptr);

/**
 * Bayesian Information Criterion of a k-means clustering under the
 * identical spherical Gaussian model of Pelleg & Moore (X-means), the
 * formulation referenced via SimPoint [18] in the paper. Larger is
 * better.
 *
 * @param varianceFloor lower bound on the shared variance estimate (in
 *        squared data units). Nonzero values model finite measurement
 *        resolution and prevent the likelihood from diverging on
 *        populations that contain (near-)duplicate points.
 */
double bicScore(const Matrix &data, const KMeansResult &res,
                double varianceFloor = 0.0);

/** Result of a BIC-driven sweep over K. */
struct BicSweepResult
{
    std::vector<double> bicByK;     ///< BIC score for K = 1..maxK
    std::vector<KMeansResult> fits; ///< fit for each K
    size_t chosenK = 1;             ///< smallest K within frac*max BIC
};

/**
 * Sweep K = 1..maxK and choose the smallest K whose BIC is at least
 * frac (default 0.9) of the maximum observed BIC, the selection rule
 * of Section VI. varianceFloor is forwarded to bicScore. The sweep
 * flattens every (k, restart) pair into one wave of Lloyd jobs over
 * the pool; results are identical for any worker count.
 */
BicSweepResult bicSweep(const Matrix &data, size_t maxK, uint64_t seed,
                        double frac = 0.9, double varianceFloor = 0.0,
                        pipeline::ThreadPool *pool = nullptr);

} // namespace mica
