/**
 * @file
 * Principal components analysis via Jacobi eigendecomposition.
 *
 * The paper positions its feature-selection methods against PCA-based
 * workload characterization (Eeckhout et al.; Phansalkar et al.). We
 * implement PCA so the comparison in DESIGN.md / the ablation benches can
 * be reproduced: PCA removes correlation but still requires measuring all
 * input characteristics, whereas correlation elimination and the genetic
 * algorithm select a measurable subset.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "stats/matrix.hh"

namespace mica
{

/** Result of a PCA decomposition. */
struct PcaResult
{
    /** Eigenvalues of the covariance matrix, descending. */
    std::vector<double> eigenvalues;
    /** Eigenvectors as rows, matching eigenvalues order. */
    Matrix components;
    /** Per-column means of the input (for projection). */
    std::vector<double> colMeans;

    /** @return fraction of total variance captured by the first k PCs. */
    double varianceExplained(size_t k) const;

    /** Project a dataset onto the first k principal components. */
    Matrix project(const Matrix &m, size_t k) const;
};

/**
 * Compute a full PCA of the dataset (covariance of mean-centered
 * columns, cyclic Jacobi eigensolver).
 *
 * @param m dataset, rows = observations, cols = variables
 * @return eigenvalues/eigenvectors sorted by descending eigenvalue
 */
PcaResult pcaFit(const Matrix &m);

} // namespace mica
