#include "stats/kmeans.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/rng.hh"

namespace mica
{

namespace
{

double
sqDist(const double *a, const double *b, size_t d)
{
    double s = 0.0;
    for (size_t i = 0; i < d; ++i) {
        const double dl = a[i] - b[i];
        s += dl * dl;
    }
    return s;
}

/** k-means++ seeding: spread initial centroids by D^2 sampling. */
Matrix
seedCentroids(const Matrix &data, size_t k, Rng &rng)
{
    const size_t n = data.rows(), d = data.cols();
    Matrix cent(k, d);
    const size_t first = rng.below(n);
    for (size_t c = 0; c < d; ++c)
        cent.at(0, c) = data.at(first, c);

    std::vector<double> bestD(n, std::numeric_limits<double>::max());
    for (size_t ci = 1; ci < k; ++ci) {
        double total = 0.0;
        for (size_t r = 0; r < n; ++r) {
            const double dd = sqDist(data.row(r), cent.row(ci - 1), d);
            bestD[r] = std::min(bestD[r], dd);
            total += bestD[r];
        }
        size_t pick = 0;
        if (total > 0.0) {
            double target = rng.unit() * total;
            for (size_t r = 0; r < n; ++r) {
                target -= bestD[r];
                if (target <= 0.0) {
                    pick = r;
                    break;
                }
            }
        } else {
            pick = rng.below(n);
        }
        for (size_t c = 0; c < d; ++c)
            cent.at(ci, c) = data.at(pick, c);
    }
    return cent;
}

KMeansResult
lloyd(const Matrix &data, size_t k, Rng &rng, int maxIters)
{
    const size_t n = data.rows(), d = data.cols();
    KMeansResult res;
    res.k = k;
    res.centroids = seedCentroids(data, k, rng);
    res.assignment.assign(n, -1);

    for (int it = 0; it < maxIters; ++it) {
        bool changed = false;
        // Assignment step.
        for (size_t r = 0; r < n; ++r) {
            int best = 0;
            double bestD = std::numeric_limits<double>::max();
            for (size_t c = 0; c < k; ++c) {
                const double dd = sqDist(data.row(r),
                                         res.centroids.row(c), d);
                if (dd < bestD) {
                    bestD = dd;
                    best = static_cast<int>(c);
                }
            }
            if (res.assignment[r] != best) {
                res.assignment[r] = best;
                changed = true;
            }
        }
        res.iterations = it + 1;
        if (!changed && it > 0)
            break;
        // Update step.
        Matrix sums(k, d, 0.0);
        std::vector<size_t> counts(k, 0);
        for (size_t r = 0; r < n; ++r) {
            const int c = res.assignment[r];
            ++counts[c];
            for (size_t j = 0; j < d; ++j)
                sums.at(c, j) += data.at(r, j);
        }
        for (size_t c = 0; c < k; ++c) {
            if (counts[c] == 0) {
                // Re-seed an empty cluster with the worst-fit point.
                size_t far = 0;
                double farD = -1.0;
                for (size_t r = 0; r < n; ++r) {
                    const double dd = sqDist(
                        data.row(r),
                        res.centroids.row(res.assignment[r]), d);
                    if (dd > farD) {
                        farD = dd;
                        far = r;
                    }
                }
                for (size_t j = 0; j < d; ++j)
                    res.centroids.at(c, j) = data.at(far, j);
            } else {
                for (size_t j = 0; j < d; ++j) {
                    res.centroids.at(c, j) =
                        sums.at(c, j) / static_cast<double>(counts[c]);
                }
            }
        }
    }

    res.inertia = 0.0;
    for (size_t r = 0; r < n; ++r) {
        res.inertia += sqDist(data.row(r),
                              res.centroids.row(res.assignment[r]), d);
    }
    return res;
}

} // namespace

std::vector<size_t>
KMeansResult::members(size_t c) const
{
    std::vector<size_t> out;
    for (size_t r = 0; r < assignment.size(); ++r)
        if (assignment[r] == static_cast<int>(c))
            out.push_back(r);
    return out;
}

KMeansResult
kMeansFit(const Matrix &data, const KMeansParams &params)
{
    Rng rng(params.seed);
    KMeansResult best;
    best.inertia = std::numeric_limits<double>::max();
    const size_t k = std::min(params.k, data.rows());
    for (int r = 0; r < std::max(1, params.restarts); ++r) {
        KMeansResult cur = lloyd(data, k, rng, params.maxIters);
        if (cur.inertia < best.inertia)
            best = std::move(cur);
    }
    return best;
}

double
bicScore(const Matrix &data, const KMeansResult &res, double varianceFloor)
{
    // Pelleg & Moore (X-means) BIC under identical spherical Gaussians:
    //   BIC = loglik - (p / 2) * log(R)
    // with p = K*(d+1) free parameters (centroids + shared variance).
    const double R = static_cast<double>(data.rows());
    const double d = static_cast<double>(data.cols());
    const double K = static_cast<double>(res.k);
    if (data.rows() == 0)
        return 0.0;

    // Maximum-likelihood variance estimate (guard the K == R case).
    // varianceFloor models finite measurement resolution: populations of
    // deterministic kernels contain clusters whose true spread is ~0,
    // and the unfloored ML estimate then drives the likelihood to
    // infinity as K grows (the known X-means degeneracy on low-noise
    // data), making "one cluster per point" optimal.
    const double denom = std::max(1.0, R - K);
    const double sigma2 =
        std::max({res.inertia / denom, varianceFloor, 1e-12});

    double loglik = 0.0;
    for (size_t c = 0; c < res.k; ++c) {
        const double Rn = static_cast<double>(res.members(c).size());
        if (Rn <= 0.0)
            continue;
        loglik += Rn * std::log(Rn / R);
    }
    loglik -= (R * d / 2.0) * std::log(2.0 * M_PI * sigma2);
    loglik -= res.inertia / (2.0 * sigma2);

    const double p = K * (d + 1.0);
    return loglik - (p / 2.0) * std::log(R);
}

BicSweepResult
bicSweep(const Matrix &data, size_t maxK, uint64_t seed, double frac,
         double varianceFloor)
{
    BicSweepResult out;
    maxK = std::min(maxK, data.rows());
    out.bicByK.reserve(maxK);
    out.fits.reserve(maxK);
    for (size_t k = 1; k <= maxK; ++k) {
        KMeansParams p;
        p.k = k;
        p.seed = seed + k;
        KMeansResult fit = kMeansFit(data, p);
        out.bicByK.push_back(bicScore(data, fit, varianceFloor));
        out.fits.push_back(std::move(fit));
    }
    // "BIC within frac of the maximum": BIC scores can be negative, so
    // apply the rule on the min-max normalized score (documented
    // deviation; identical to the paper's rule for positive scores).
    double lo = out.bicByK[0], hi = out.bicByK[0];
    for (double b : out.bicByK) {
        lo = std::min(lo, b);
        hi = std::max(hi, b);
    }
    const double span = hi - lo;
    out.chosenK = out.bicByK.size();
    for (size_t k = 1; k <= out.bicByK.size(); ++k) {
        const double norm =
            span > 0.0 ? (out.bicByK[k - 1] - lo) / span : 1.0;
        if (norm >= frac) {
            out.chosenK = k;
            break;
        }
    }
    return out;
}

} // namespace mica
