#include "stats/kmeans.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/obs.hh"
#include "pipeline/thread_pool.hh"
#include "stats/rng.hh"

namespace mica
{

namespace
{

double
sqDist(const double *a, const double *b, size_t d)
{
    double s = 0.0;
    for (size_t i = 0; i < d; ++i) {
        const double dl = a[i] - b[i];
        s += dl * dl;
    }
    return s;
}

} // namespace

Matrix
kMeansSeedCentroids(const Matrix &data, size_t k, Rng &rng)
{
    const size_t n = data.rows(), d = data.cols();
    Matrix cent(k, d);
    const size_t first = rng.below(n);
    for (size_t c = 0; c < d; ++c)
        cent.at(0, c) = data.at(first, c);

    std::vector<double> bestD(n, std::numeric_limits<double>::max());
    for (size_t ci = 1; ci < k; ++ci) {
        double total = 0.0;
        for (size_t r = 0; r < n; ++r) {
            const double dd = sqDist(data.row(r), cent.row(ci - 1), d);
            bestD[r] = std::min(bestD[r], dd);
            total += bestD[r];
        }
        size_t pick = n;
        if (total > 0.0) {
            double target = rng.unit() * total;
            for (size_t r = 0; r < n; ++r) {
                target -= bestD[r];
                if (target <= 0.0) {
                    pick = r;
                    break;
                }
            }
            if (pick == n) {
                // Rounding left target > 0 after the scan (or total
                // overflowed to inf, whose running difference never
                // reaches zero): take the last row that actually
                // carries weight instead of silently repeating row 0,
                // which can duplicate an existing centroid.
                for (size_t r = n; r-- > 0;) {
                    if (bestD[r] > 0.0) {
                        pick = r;
                        break;
                    }
                }
            }
        }
        if (pick == n)
            pick = rng.below(n);
        for (size_t c = 0; c < d; ++c)
            cent.at(ci, c) = data.at(pick, c);
    }
    return cent;
}

void
kMeansReseedEmpty(const Matrix &data, const std::vector<int> &assignment,
                  const std::vector<size_t> &counts, Matrix &centroids)
{
    const size_t n = data.rows(), d = data.cols();
    const size_t k = counts.size();
    // Points already handed to an empty cluster this step; without
    // this, two empty clusters could both re-seed onto the same
    // farthest point and stay duplicated centroids forever.
    std::vector<char> used(n, 0);
    for (size_t c = 0; c < k; ++c) {
        if (counts[c] != 0)
            continue;
        // Re-seed with the worst-fit point not yet used, recomputed
        // per empty cluster (an earlier re-seed may have consumed the
        // previous winner).
        size_t far = n;
        double farD = -1.0;
        for (size_t r = 0; r < n; ++r) {
            if (used[r])
                continue;
            const double dd =
                sqDist(data.row(r),
                       centroids.row(static_cast<size_t>(assignment[r])),
                       d);
            if (dd > farD) {
                farD = dd;
                far = r;
            }
        }
        if (far == n)
            continue;   // fewer points than empty clusters
        static obs::Counter reseeds("kmeans.reseed.count");
        reseeds.add(1);
        used[far] = 1;
        for (size_t j = 0; j < d; ++j)
            centroids.at(c, j) = data.at(far, j);
    }
}

KMeansResult
kMeansRunOnce(const Matrix &data, size_t k, uint64_t streamSeed,
              int maxIters)
{
    const size_t n = data.rows(), d = data.cols();
    KMeansResult res;
    if (n == 0 || k == 0) {
        res.centroids = Matrix(0, d);
        return res;     // nothing to cluster (below(0) is undefined)
    }
    static obs::Counter restarts("kmeans.restart.count");
    restarts.add(1);
    Rng rng(streamSeed);
    res.k = k;
    res.centroids = kMeansSeedCentroids(data, k, rng);
    res.assignment.assign(n, -1);

    for (int it = 0; it < maxIters; ++it) {
        bool changed = false;
        // Assignment step.
        for (size_t r = 0; r < n; ++r) {
            int best = 0;
            double bestD = std::numeric_limits<double>::max();
            for (size_t c = 0; c < k; ++c) {
                const double dd = sqDist(data.row(r),
                                         res.centroids.row(c), d);
                if (dd < bestD) {
                    bestD = dd;
                    best = static_cast<int>(c);
                }
            }
            if (res.assignment[r] != best) {
                res.assignment[r] = best;
                changed = true;
            }
        }
        res.iterations = it + 1;
        if (!changed && it > 0)
            break;
        // Update step.
        Matrix sums(k, d, 0.0);
        std::vector<size_t> counts(k, 0);
        for (size_t r = 0; r < n; ++r) {
            const int c = res.assignment[r];
            ++counts[c];
            for (size_t j = 0; j < d; ++j)
                sums.at(c, j) += data.at(r, j);
        }
        for (size_t c = 0; c < k; ++c) {
            if (counts[c] == 0)
                continue;
            for (size_t j = 0; j < d; ++j) {
                res.centroids.at(c, j) =
                    sums.at(c, j) / static_cast<double>(counts[c]);
            }
        }
        kMeansReseedEmpty(data, res.assignment, counts, res.centroids);
    }

    res.inertia = 0.0;
    for (size_t r = 0; r < n; ++r) {
        res.inertia += sqDist(data.row(r),
                              res.centroids.row(res.assignment[r]), d);
    }
    return res;
}

std::vector<size_t>
KMeansResult::members(size_t c) const
{
    std::vector<size_t> out;
    for (size_t r = 0; r < assignment.size(); ++r)
        if (assignment[r] == static_cast<int>(c))
            out.push_back(r);
    return out;
}

KMeansResult
kMeansFit(const Matrix &data, const KMeansParams &params,
          pipeline::ThreadPool *pool)
{
    const size_t k = std::min(params.k, data.rows());
    const size_t restarts =
        static_cast<size_t>(std::max(1, params.restarts));
    std::vector<KMeansResult> runs(restarts);
    pipeline::parallelBlocks(pool, restarts, [&](size_t r) {
        runs[r] = kMeansRunOnce(data, k, Rng::childSeed(params.seed, r),
                                params.maxIters);
    });
    // Fixed-order reduction: strict < keeps the lowest restart index on
    // inertia ties, independent of which job finished first.
    size_t best = 0;
    for (size_t r = 1; r < restarts; ++r)
        if (runs[r].inertia < runs[best].inertia)
            best = r;
    return std::move(runs[best]);
}

double
bicScore(const Matrix &data, const KMeansResult &res, double varianceFloor)
{
    // Pelleg & Moore (X-means) BIC under identical spherical Gaussians:
    //   BIC = loglik - (p / 2) * log(R)
    // with p = K*(d+1) free parameters (centroids + shared variance).
    const double R = static_cast<double>(data.rows());
    const double d = static_cast<double>(data.cols());
    const double K = static_cast<double>(res.k);
    if (data.rows() == 0)
        return 0.0;

    // Maximum-likelihood variance estimate (guard the K == R case).
    // varianceFloor models finite measurement resolution: populations of
    // deterministic kernels contain clusters whose true spread is ~0,
    // and the unfloored ML estimate then drives the likelihood to
    // infinity as K grows (the known X-means degeneracy on low-noise
    // data), making "one cluster per point" optimal.
    const double denom = std::max(1.0, R - K);
    const double sigma2 =
        std::max({res.inertia / denom, varianceFloor, 1e-12});

    double loglik = 0.0;
    for (size_t c = 0; c < res.k; ++c) {
        const double Rn = static_cast<double>(res.members(c).size());
        if (Rn <= 0.0)
            continue;
        loglik += Rn * std::log(Rn / R);
    }
    loglik -= (R * d / 2.0) * std::log(2.0 * M_PI * sigma2);
    loglik -= res.inertia / (2.0 * sigma2);

    const double p = K * (d + 1.0);
    return loglik - (p / 2.0) * std::log(R);
}

BicSweepResult
bicSweep(const Matrix &data, size_t maxK, uint64_t seed, double frac,
         double varianceFloor, pipeline::ThreadPool *pool)
{
    BicSweepResult out;
    maxK = std::min(maxK, data.rows());
    const size_t restarts =
        static_cast<size_t>(std::max(1, KMeansParams{}.restarts));

    // Flatten every (k, restart) pair into one wave of independent
    // Lloyd jobs — no nested submission, maximal overlap between the
    // cheap small-k and expensive large-k fits. Job (k, r) draws from
    // stream childSeed(seed + k, r), exactly as the serial per-k
    // kMeansFit would.
    std::vector<KMeansResult> runs(maxK * restarts);
    pipeline::parallelBlocks(pool, runs.size(), [&](size_t b) {
        const size_t k = 1 + b / restarts;
        const size_t r = b % restarts;
        runs[b] = kMeansRunOnce(data, k, Rng::childSeed(seed + k, r),
                                KMeansParams{}.maxIters);
    });

    out.bicByK.reserve(maxK);
    out.fits.reserve(maxK);
    for (size_t k = 1; k <= maxK; ++k) {
        size_t best = (k - 1) * restarts;
        for (size_t r = 1; r < restarts; ++r) {
            const size_t b = (k - 1) * restarts + r;
            if (runs[b].inertia < runs[best].inertia)
                best = b;
        }
        out.bicByK.push_back(
            bicScore(data, runs[best], varianceFloor));
        out.fits.push_back(std::move(runs[best]));
    }
    if (out.bicByK.empty()) {
        // No rows to cluster: empty sweep, and chosenK = 0 so callers
        // cannot index fits[chosenK - 1] into an empty vector.
        out.chosenK = 0;
        return out;
    }
    // "BIC within frac of the maximum": BIC scores can be negative, so
    // apply the rule on the min-max normalized score (documented
    // deviation; identical to the paper's rule for positive scores).
    double lo = out.bicByK[0], hi = out.bicByK[0];
    for (double b : out.bicByK) {
        lo = std::min(lo, b);
        hi = std::max(hi, b);
    }
    const double span = hi - lo;
    out.chosenK = out.bicByK.size();
    for (size_t k = 1; k <= out.bicByK.size(); ++k) {
        const double norm =
            span > 0.0 ? (out.bicByK[k - 1] - lo) / span : 1.0;
        if (norm >= frac) {
            out.chosenK = k;
            break;
        }
    }
    return out;
}

} // namespace mica
