/**
 * @file
 * Receiver operating characteristic (ROC) analysis for workload-space
 * comparison, as used in Fig. 4 of the paper.
 *
 * In the paper's setup the "ground truth" label of a benchmark tuple is
 * whether its distance in the hardware-performance-counter space exceeds
 * a fixed threshold (20% of the max). The "score" is the tuple's distance
 * in a microarchitecture-independent space. Sweeping the score threshold
 * produces the ROC: sensitivity (true positive rate) vs. one minus
 * specificity.
 */

#pragma once

#include <cstddef>
#include <vector>

namespace mica
{

/** One operating point on a ROC curve. */
struct RocPoint
{
    double threshold = 0.0;     ///< score threshold producing this point
    double sensitivity = 0.0;   ///< TP / (TP + FN)
    double specificity = 0.0;   ///< TN / (TN + FP)

    double fpr() const { return 1.0 - specificity; }
};

/** A full ROC curve plus its area. */
struct RocCurve
{
    std::vector<RocPoint> points;   ///< ordered by increasing FPR
    double auc = 0.0;               ///< area under the curve

    /** @return point whose sensitivity+specificity is maximal. */
    const RocPoint &bestPoint() const;
};

/**
 * Build the ROC of score vs. binary label.
 *
 * @param labels  true = positive tuple (large reference-space distance)
 * @param scores  the candidate-space distances; larger = more positive
 * @param numThresholds number of evenly spaced thresholds to sweep
 *                      (0 = use every distinct score, exact curve)
 */
RocCurve rocCurve(const std::vector<bool> &labels,
                  const std::vector<double> &scores,
                  size_t numThresholds = 0);

/**
 * Helper for the paper's construction: label tuples by whether the
 * reference distance exceeds thresholdFrac * max(reference).
 */
std::vector<bool> labelsFromDistances(const std::vector<double> &refDist,
                                      double thresholdFrac);

} // namespace mica
