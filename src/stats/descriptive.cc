#include "stats/descriptive.hh"

namespace mica
{

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

double
stddev(const std::vector<double> &v)
{
    if (v.size() < 2)
        return 0.0;
    const double m = mean(v);
    double s = 0.0;
    for (double x : v)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(v.size()));
}

double
pearson(const std::vector<double> &a, const std::vector<double> &b)
{
    const size_t n = a.size();
    if (n == 0 || b.size() != n)
        return 0.0;
    const double ma = mean(a), mb = mean(b);
    double sab = 0.0, saa = 0.0, sbb = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double da = a[i] - ma, db = b[i] - mb;
        sab += da * db;
        saa += da * da;
        sbb += db * db;
    }
    if (saa <= 0.0 || sbb <= 0.0)
        return 0.0;
    return sab / std::sqrt(saa * sbb);
}

void
zscoreNormalize(Matrix &m)
{
    for (size_t c = 0; c < m.cols(); ++c) {
        auto col = m.colVec(c);
        const double mu = mean(col);
        const double sd = stddev(col);
        for (size_t r = 0; r < m.rows(); ++r)
            m.at(r, c) = sd > 0.0 ? (m.at(r, c) - mu) / sd : 0.0;
    }
}

void
minmaxNormalize(Matrix &m)
{
    if (m.rows() == 0)
        return;     // the lo/hi scan below would read row 0
    for (size_t c = 0; c < m.cols(); ++c) {
        double lo = m.at(0, c), hi = m.at(0, c);
        for (size_t r = 1; r < m.rows(); ++r) {
            lo = std::min(lo, m.at(r, c));
            hi = std::max(hi, m.at(r, c));
        }
        // Constant columns (span 0) and columns whose span is not a
        // finite number (a NaN/inf value, or inf - -inf) both map to
        // the midpoint — dividing would fill the axis with NaNs.
        const double span = hi - lo;
        const bool degenerate = !(span > 0.0) || !std::isfinite(span);
        for (size_t r = 0; r < m.rows(); ++r) {
            const double x = m.at(r, c);
            m.at(r, c) = degenerate || !std::isfinite(x)
                ? 0.5 : (x - lo) / span;
        }
    }
}

Matrix
correlationMatrix(const Matrix &m)
{
    const size_t c = m.cols();
    Matrix corr(c, c, 0.0);
    std::vector<std::vector<double>> cols(c);
    for (size_t j = 0; j < c; ++j)
        cols[j] = m.colVec(j);
    for (size_t i = 0; i < c; ++i) {
        corr.at(i, i) = 1.0;
        for (size_t j = i + 1; j < c; ++j) {
            const double r = pearson(cols[i], cols[j]);
            corr.at(i, j) = r;
            corr.at(j, i) = r;
        }
    }
    corr.colNames = m.colNames;
    corr.rowNames = m.colNames;
    return corr;
}

} // namespace mica
