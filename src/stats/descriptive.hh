/**
 * @file
 * Descriptive statistics: means, standard deviations, normalization,
 * and Pearson correlation. These are the primitives the paper's
 * methodology is built from (Section IV: z-score normalization of both
 * workload spaces; Section V: correlation between characteristics and
 * between distance vectors).
 */

#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "stats/matrix.hh"

namespace mica
{

/** @return arithmetic mean of v (0 for empty input). */
double mean(const std::vector<double> &v);

/** @return population standard deviation of v. */
double stddev(const std::vector<double> &v);

/**
 * Pearson correlation coefficient of two equally sized vectors.
 * @return correlation in [-1, 1]; 0 when either vector is constant.
 */
double pearson(const std::vector<double> &a, const std::vector<double> &b);

/**
 * Z-score normalize every column of m in place: each characteristic gets
 * zero mean and unit standard deviation across benchmarks, putting all
 * characteristics on a common scale (Section IV). Constant columns are
 * left at zero.
 */
void zscoreNormalize(Matrix &m);

/**
 * Min-max normalize every column of m in place to [0, 1]; used for the
 * kiviat plot axes (Fig. 6). Degenerate inputs stay well-defined
 * instead of producing NaN axes: constant columns, non-finite values,
 * and non-finite spans map to 0.5, and an empty matrix is a no-op.
 */
void minmaxNormalize(Matrix &m);

/**
 * Column-by-column Pearson correlation matrix of a dataset.
 * @return cols x cols symmetric matrix with unit diagonal.
 */
Matrix correlationMatrix(const Matrix &m);

} // namespace mica
