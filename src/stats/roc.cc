#include "stats/roc.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mica
{

const RocPoint &
RocCurve::bestPoint() const
{
    if (points.empty())
        throw std::logic_error("empty ROC curve");
    size_t best = 0;
    double bestJ = -1.0;
    for (size_t i = 0; i < points.size(); ++i) {
        const double j = points[i].sensitivity + points[i].specificity;
        if (j > bestJ) {
            bestJ = j;
            best = i;
        }
    }
    return points[best];
}

RocCurve
rocCurve(const std::vector<bool> &labels, const std::vector<double> &scores,
         size_t numThresholds)
{
    if (labels.size() != scores.size())
        throw std::invalid_argument("rocCurve: size mismatch");
    RocCurve out;
    if (labels.empty())
        return out;

    size_t pos = 0;
    for (bool l : labels)
        pos += l ? 1 : 0;
    const size_t neg = labels.size() - pos;

    std::vector<double> thresholds;
    if (numThresholds == 0) {
        thresholds = scores;
        std::sort(thresholds.begin(), thresholds.end());
        thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                         thresholds.end());
    } else {
        double lo = scores[0], hi = scores[0];
        for (double s : scores) {
            lo = std::min(lo, s);
            hi = std::max(hi, s);
        }
        for (size_t i = 0; i < numThresholds; ++i) {
            thresholds.push_back(
                lo + (hi - lo) * static_cast<double>(i) /
                    static_cast<double>(numThresholds - 1));
        }
    }
    // Add sentinels so the curve spans (0,0) to (1,1): one threshold
    // above every score (nothing predicted positive) and one below
    // every score (everything predicted positive).
    double tLo = thresholds.front(), tHi = thresholds.front();
    for (double t : thresholds) {
        tLo = std::min(tLo, t);
        tHi = std::max(tHi, t);
    }
    thresholds.push_back(tHi + 1.0);
    thresholds.push_back(tLo - 1.0);

    for (double t : thresholds) {
        size_t tp = 0, tn = 0;
        for (size_t i = 0; i < scores.size(); ++i) {
            const bool predPos = scores[i] > t;
            if (predPos && labels[i])
                ++tp;
            else if (!predPos && !labels[i])
                ++tn;
        }
        RocPoint p;
        p.threshold = t;
        p.sensitivity = pos ? static_cast<double>(tp) /
                              static_cast<double>(pos) : 1.0;
        p.specificity = neg ? static_cast<double>(tn) /
                              static_cast<double>(neg) : 1.0;
        out.points.push_back(p);
    }

    // Order by increasing FPR for plotting and AUC integration.
    std::sort(out.points.begin(), out.points.end(),
              [](const RocPoint &a, const RocPoint &b) {
                  if (a.fpr() != b.fpr())
                      return a.fpr() < b.fpr();
                  return a.sensitivity < b.sensitivity;
              });

    // Trapezoidal AUC, padding the ends to (0,0) and (1,1).
    double auc = 0.0;
    double prevX = 0.0, prevY = 0.0;
    for (const auto &p : out.points) {
        auc += (p.fpr() - prevX) * (p.sensitivity + prevY) / 2.0;
        prevX = p.fpr();
        prevY = p.sensitivity;
    }
    auc += (1.0 - prevX) * (1.0 + prevY) / 2.0;
    out.auc = auc;
    return out;
}

std::vector<bool>
labelsFromDistances(const std::vector<double> &refDist, double thresholdFrac)
{
    double mx = 0.0;
    for (double d : refDist)
        mx = std::max(mx, d);
    const double thr = thresholdFrac * mx;
    std::vector<bool> labels(refDist.size());
    for (size_t i = 0; i < refDist.size(); ++i)
        labels[i] = refDist[i] > thr;
    return labels;
}

} // namespace mica
