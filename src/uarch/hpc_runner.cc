#include "uarch/hpc_runner.hh"

#include "trace/engine.hh"

namespace mica::uarch
{

HwCounterProfile
collectHwProfile(TraceSource &src, const std::string &name,
                 uint64_t maxInsts, const MachineConfig &cfg)
{
    HwCounterAnalyzer hw(cfg);
    AnalysisEngine engine;
    engine.add(&hw);
    engine.run(src, maxInsts);
    return hw.profile(name);
}

Matrix
hwProfilesToMatrix(const std::vector<HwCounterProfile> &profiles)
{
    Matrix m;
    for (const char *n : HwCounterProfile::metricNames())
        m.colNames.push_back(n);
    for (const auto &p : profiles) {
        m.appendRow(p.toVector());
        m.rowNames.push_back(p.name);
    }
    return m;
}

} // namespace mica::uarch
