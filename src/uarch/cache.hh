/**
 * @file
 * Set-associative cache model with LRU replacement.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace mica::uarch
{

/** Geometry of one cache level. */
struct CacheConfig
{
    uint64_t sizeBytes = 8 * 1024;
    uint64_t lineBytes = 32;
    uint64_t assoc = 1;
};

/**
 * Tag-only set-associative cache with true-LRU replacement. Tracks
 * accesses and misses; no data storage (the interpreter holds the
 * functional state). Single-ported, blocking — adequate for the
 * counter-style statistics the paper's HPC characterization uses.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg)
        : lineBits_(log2u(cfg.lineBytes)),
          numSets_(cfg.sizeBytes / (cfg.lineBytes * cfg.assoc)),
          assoc_(cfg.assoc),
          ways_(numSets_ * cfg.assoc)
    {}

    /**
     * Look up addr; fill on miss.
     * @return true on hit.
     */
    bool
    access(uint64_t addr)
    {
        ++accesses_;
        const uint64_t line = addr >> lineBits_;
        const uint64_t set = line % numSets_;
        Way *base = &ways_[set * assoc_];
        ++tick_;
        for (uint64_t w = 0; w < assoc_; ++w) {
            if (base[w].valid && base[w].tag == line) {
                base[w].lastUsed = tick_;
                return true;
            }
        }
        ++misses_;
        // Victim: invalid way if any, else LRU.
        uint64_t victim = 0;
        uint64_t oldest = UINT64_MAX;
        for (uint64_t w = 0; w < assoc_; ++w) {
            if (!base[w].valid) {
                victim = w;
                break;
            }
            if (base[w].lastUsed < oldest) {
                oldest = base[w].lastUsed;
                victim = w;
            }
        }
        base[victim] = {line, tick_, true};
        return false;
    }

    uint64_t accesses() const { return accesses_; }
    uint64_t misses() const { return misses_; }

    /** @return misses / accesses (0 when idle). */
    double
    missRate() const
    {
        return accesses_ ? static_cast<double>(misses_) /
                           static_cast<double>(accesses_) : 0.0;
    }

    uint64_t numSets() const { return numSets_; }

  private:
    struct Way
    {
        uint64_t tag = 0;
        uint64_t lastUsed = 0;
        bool valid = false;
    };

    static unsigned
    log2u(uint64_t v)
    {
        unsigned b = 0;
        while ((1ull << b) < v)
            ++b;
        return b;
    }

    unsigned lineBits_;
    uint64_t numSets_;
    uint64_t assoc_;
    std::vector<Way> ways_;
    uint64_t accesses_ = 0;
    uint64_t misses_ = 0;
    uint64_t tick_ = 0;
};

/**
 * Fully associative TLB with LRU replacement, modeled as a one-set
 * cache over page-granular addresses.
 */
class Tlb
{
  public:
    Tlb(unsigned entries, unsigned pageBits)
        : pageBits_(pageBits),
          cache_(CacheConfig{entries * (1ull << pageBits),
                             1ull << pageBits, entries})
    {}

    /** @return true on TLB hit. */
    bool access(uint64_t addr) { return cache_.access(addr); }

    uint64_t accesses() const { return cache_.accesses(); }
    uint64_t misses() const { return cache_.misses(); }
    double missRate() const { return cache_.missRate(); }

  private:
    [[maybe_unused]] unsigned pageBits_;
    Cache cache_;
};

} // namespace mica::uarch
