/**
 * @file
 * Convenience entry point: run the HPC characterization over a trace.
 */

#pragma once

#include <string>
#include <vector>

#include "stats/matrix.hh"
#include "trace/trace_source.hh"
#include "uarch/hw_counter.hh"

namespace mica::uarch
{

/**
 * Collect the seven hardware-counter metrics for one trace.
 *
 * @param src trace producer
 * @param name benchmark identification for the profile
 * @param maxInsts instruction budget (0 = unlimited)
 * @param cfg machine configuration (defaults to the EV56/EV67 shapes)
 */
HwCounterProfile collectHwProfile(TraceSource &src, const std::string &name,
                                  uint64_t maxInsts = 0,
                                  const MachineConfig &cfg = {});

/** @return 7-column matrix, one row per profile. */
Matrix hwProfilesToMatrix(const std::vector<HwCounterProfile> &profiles);

} // namespace mica::uarch
