#include "uarch/hw_counter.hh"

#include <algorithm>

namespace mica::uarch
{

const std::array<const char *, HwCounterProfile::kNumMetrics> &
HwCounterProfile::metricNames()
{
    static const std::array<const char *, kNumMetrics> names = {
        "ipc_ev56", "ipc_ev67", "br_miss_rate", "l1d_miss_rate",
        "l1i_miss_rate", "l2_miss_rate", "dtlb_miss_rate",
    };
    return names;
}

std::vector<double>
HwCounterProfile::toVector() const
{
    return {ipcEv56, ipcEv67, branchMissRate, l1dMissRate,
            l1iMissRate, l2MissRate, dtlbMissRate};
}

HwCounterAnalyzer::HwCounterAnalyzer(const MachineConfig &cfg)
    : cfg_(cfg), l1i_(cfg.l1i), l1d_(cfg.l1d), l2_(cfg.l2),
      dtlb_(cfg.dtlbEntries, cfg.dtlbPageBits),
      complete67_(cfg.window67, 0)
{}

void
HwCounterAnalyzer::accept(const InstRecord &rec)
{
    // ----------------------------------------------------------------
    // Shared memory hierarchy.
    // ----------------------------------------------------------------
    MemLevel ilevel = MemLevel::L1;
    if (!l1i_.access(rec.pc))
        ilevel = l2_.access(rec.pc) ? MemLevel::L2 : MemLevel::Mem;

    MemLevel dlevel = MemLevel::L1;
    bool dtlbMiss = false;
    if (rec.isMem()) {
        dtlbMiss = !dtlb_.access(rec.memAddr);
        if (!l1d_.access(rec.memAddr)) {
            dlevel = l2_.access(rec.memAddr) ? MemLevel::L2
                                             : MemLevel::Mem;
        }
    }

    // ----------------------------------------------------------------
    // Branch predictors.
    // ----------------------------------------------------------------
    bool mispred67 = false;
    if (rec.isCondBranch()) {
        ++condBranches_;
        if (bimodal_.predictAndUpdate(rec.pc, rec.taken) != rec.taken)
            ++bimodalMisses_;
        mispred67 =
            tournament_.predictAndUpdate(rec.pc, rec.taken) != rec.taken;
    }

    // ----------------------------------------------------------------
    // EV56-like in-order stall accounting.
    // ----------------------------------------------------------------
    if (ilevel == MemLevel::L2)
        stall56_ += cfg_.l1MissPenalty;
    else if (ilevel == MemLevel::Mem)
        stall56_ += cfg_.l1MissPenalty + cfg_.l2MissPenalty;
    if (rec.isMem()) {
        if (dtlbMiss)
            stall56_ += cfg_.tlbMissPenalty;
        if (dlevel == MemLevel::L2)
            stall56_ += cfg_.l1MissPenalty;
        else if (dlevel == MemLevel::Mem)
            stall56_ += cfg_.l1MissPenalty + cfg_.l2MissPenalty;
    }
    // The EV56 branch misprediction stall is charged once at the end
    // from bimodalMisses_ (profile()); only per-event stalls accrue here.
    if (rec.cls == InstClass::IntDiv)
        stall56_ += cfg_.intDivCost;
    else if (rec.cls == InstClass::FpDiv)
        stall56_ += cfg_.fpDivCost;

    // ----------------------------------------------------------------
    // EV67-like out-of-order dataflow window.
    // ----------------------------------------------------------------
    unsigned lat = cfg_.latIntAlu;
    switch (rec.cls) {
      case InstClass::IntMul: lat = cfg_.latIntMul; break;
      case InstClass::IntDiv: lat = cfg_.latIntDiv; break;
      case InstClass::FpAlu: lat = cfg_.latFpAlu; break;
      case InstClass::FpMul: lat = cfg_.latFpMul; break;
      case InstClass::FpDiv: lat = cfg_.latFpDiv; break;
      case InstClass::Load:
        lat = dlevel == MemLevel::L1 ? cfg_.latLoadL1
            : dlevel == MemLevel::L2 ? cfg_.latLoadL2
            : cfg_.latLoadMem;
        break;
      case InstClass::Store: lat = cfg_.latStore; break;
      case InstClass::Branch:
      case InstClass::Jump:
      case InstClass::Call:
      case InstClass::Return:
        lat = cfg_.latBranch;
        break;
      default:
        break;
    }

    uint64_t start = complete67_[insts_ % cfg_.window67];
    start = std::max(start, fetchReady67_);
    start = std::max(start, insts_ / cfg_.issueWidth67);
    for (unsigned s = 0; s < rec.numSrcRegs; ++s) {
        const uint16_t r = rec.srcRegs[s];
        if (r == kZeroReg || r >= kNumRegs)
            continue;
        start = std::max(start, regReady67_[r]);
    }
    const uint64_t comp = start + lat;
    complete67_[insts_ % cfg_.window67] = comp;
    if (rec.hasDst() && rec.dstReg != kZeroReg && rec.dstReg < kNumRegs)
        regReady67_[rec.dstReg] = comp;
    maxComplete67_ = std::max(maxComplete67_, comp);
    if (mispred67) {
        fetchReady67_ = comp +
            static_cast<uint64_t>(cfg_.branchMissPenalty67);
    }

    ++insts_;
}

HwCounterProfile
HwCounterAnalyzer::profile(const std::string &name) const
{
    HwCounterProfile p;
    p.name = name;
    p.instCount = insts_;
    if (insts_ == 0)
        return p;

    const double issueCycles =
        static_cast<double>(insts_) / cfg_.issueWidth56;
    const double mispredStall =
        static_cast<double>(bimodalMisses_) * cfg_.branchMissPenalty56;
    const double cycles56 = issueCycles + stall56_ + mispredStall;
    p.ipcEv56 = static_cast<double>(insts_) / std::max(1.0, cycles56);
    p.ipcEv67 = static_cast<double>(insts_) /
        std::max<uint64_t>(1, maxComplete67_);
    p.branchMissRate = condBranches_
        ? static_cast<double>(bimodalMisses_) /
          static_cast<double>(condBranches_)
        : 0.0;
    p.l1dMissRate = l1d_.missRate();
    p.l1iMissRate = l1i_.missRate();
    p.l2MissRate = l2_.missRate();
    p.dtlbMissRate = dtlb_.missRate();
    return p;
}

} // namespace mica::uarch
