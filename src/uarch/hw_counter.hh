/**
 * @file
 * Hardware-performance-counter characterization (Section III-B).
 *
 * The paper measures IPC, branch misprediction rate, L1 D/I miss rates,
 * L2 miss rate and D-TLB miss rate on an Alpha 21164A (EV56, in-order
 * dual-issue) plus IPC on an Alpha 21264A (EV67, 4-wide out-of-order).
 * This module substitutes a trace-driven simulation of equivalently
 * shaped machines; see DESIGN.md for the substitution argument.
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace_source.hh"
#include "uarch/cache.hh"
#include "uarch/predictors.hh"

namespace mica::uarch
{

/** Machine configuration for the HPC characterization. */
struct MachineConfig
{
    CacheConfig l1i{8 * 1024, 32, 1};       ///< EV56: 8KB direct L1I
    CacheConfig l1d{8 * 1024, 32, 1};       ///< EV56: 8KB direct L1D
    CacheConfig l2{96 * 1024, 64, 3};       ///< EV56: 96KB 3-way S-cache
    unsigned dtlbEntries = 64;              ///< EV56: 64-entry DTLB
    unsigned dtlbPageBits = 13;             ///< 8KB pages

    // In-order (EV56-like) cost model parameters, in cycles.
    double issueWidth56 = 2.0;
    double l1MissPenalty = 8.0;
    double l2MissPenalty = 50.0;
    double tlbMissPenalty = 30.0;
    double branchMissPenalty56 = 5.0;
    double intDivCost = 8.0;
    double fpDivCost = 12.0;

    // Out-of-order (EV67-like) window model parameters.
    unsigned window67 = 80;
    unsigned issueWidth67 = 4;
    double branchMissPenalty67 = 7.0;
    unsigned latIntAlu = 1, latIntMul = 7, latIntDiv = 20;
    unsigned latFpAlu = 4, latFpMul = 4, latFpDiv = 12;
    unsigned latLoadL1 = 3, latLoadL2 = 13, latLoadMem = 80;
    unsigned latStore = 1, latBranch = 1;
};

/** The seven hardware-counter metrics (Section III-B order). */
struct HwCounterProfile
{
    std::string name;
    uint64_t instCount = 0;

    double ipcEv56 = 0.0;       ///< in-order IPC
    double ipcEv67 = 0.0;       ///< out-of-order IPC
    double branchMissRate = 0.0;
    double l1dMissRate = 0.0;
    double l1iMissRate = 0.0;
    double l2MissRate = 0.0;    ///< local L2 miss rate
    double dtlbMissRate = 0.0;

    static constexpr size_t kNumMetrics = 7;

    /** @return metric names in vector order. */
    static const std::array<const char *, kNumMetrics> &metricNames();

    /** @return metrics as a vector (for Matrix::appendRow). */
    std::vector<double> toVector() const;
};

/**
 * Single-pass trace analyzer producing a HwCounterProfile. One shared
 * cache hierarchy feeds both cost models: miss events charge stall
 * cycles to the in-order model and stretch load latencies in the
 * out-of-order window model.
 */
class HwCounterAnalyzer : public TraceAnalyzer
{
  public:
    const char *name() const override { return "hw_counter"; }

    explicit HwCounterAnalyzer(const MachineConfig &cfg = {});

    void accept(const InstRecord &rec) override;

    /** @return the profile measured so far. */
    HwCounterProfile profile(const std::string &name) const;

  private:
    /** Latency class of a load given where it hit. */
    enum class MemLevel { L1, L2, Mem };

    MachineConfig cfg_;
    Cache l1i_, l1d_, l2_;
    Tlb dtlb_;
    BimodalPredictor bimodal_;
    TournamentPredictor tournament_;

    uint64_t insts_ = 0;
    uint64_t condBranches_ = 0;
    uint64_t bimodalMisses_ = 0;

    // EV56 accumulated stall cycles (issue cycles added at the end).
    double stall56_ = 0.0;

    // EV67 dataflow window state.
    std::vector<uint64_t> complete67_;
    std::array<uint64_t, kNumRegs> regReady67_{};
    uint64_t fetchReady67_ = 0;
    uint64_t maxComplete67_ = 0;
};

} // namespace mica::uarch
