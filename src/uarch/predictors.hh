/**
 * @file
 * Hardware branch predictor models: bimodal (Alpha 21164-class) and a
 * local/global tournament predictor (Alpha 21264-class).
 */

#pragma once

#include <cstdint>
#include <vector>

namespace mica::uarch
{

/** 2-bit saturating counter helper. */
struct Counter2
{
    uint8_t v = 1;  // weakly not-taken

    bool taken() const { return v >= 2; }

    void
    update(bool t)
    {
        if (t && v < 3)
            ++v;
        else if (!t && v > 0)
            --v;
    }
};

/**
 * Bimodal predictor: a table of 2-bit counters indexed by the branch PC.
 * Approximates the 21164A's simple branch prediction used for the EV56
 * hardware-counter branch misprediction rate.
 */
class BimodalPredictor
{
  public:
    explicit BimodalPredictor(size_t entries = 2048)
        : mask_(entries - 1), table_(entries)
    {}

    /** Predict, then update with the outcome. @return the prediction. */
    bool
    predictAndUpdate(uint64_t pc, bool taken)
    {
        Counter2 &c = table_[(pc >> 2) & mask_];
        const bool pred = c.taken();
        c.update(taken);
        return pred;
    }

  private:
    size_t mask_;
    std::vector<Counter2> table_;
};

/**
 * Tournament predictor in the style of the 21264: a per-branch local
 * history component, a global history component, and a chooser that
 * learns which component to trust per global history context.
 */
class TournamentPredictor
{
  public:
    TournamentPredictor(size_t localEntries = 1024,
                        unsigned localHistBits = 10,
                        size_t globalEntries = 4096)
        : localHistBits_(localHistBits),
          localHist_(localEntries, 0),
          localPred_(1ull << localHistBits),
          globalMask_(globalEntries - 1),
          globalPred_(globalEntries),
          choice_(globalEntries)
    {}

    /** Predict, then update with the outcome. @return the prediction. */
    bool
    predictAndUpdate(uint64_t pc, bool taken)
    {
        const size_t li = (pc >> 2) % localHist_.size();
        const uint64_t lh =
            localHist_[li] & ((1ull << localHistBits_) - 1);
        const bool localP = localPred_[lh].taken();
        const size_t gi = ghist_ & globalMask_;
        const bool globalP = globalPred_[gi].taken();
        const bool useGlobal = choice_[gi].taken();
        const bool pred = useGlobal ? globalP : localP;

        // Chooser trains toward the component that was right.
        if (localP != globalP)
            choice_[gi].update(globalP == taken);
        localPred_[lh].update(taken);
        globalPred_[gi].update(taken);
        localHist_[li] = (localHist_[li] << 1) | (taken ? 1 : 0);
        ghist_ = (ghist_ << 1) | (taken ? 1 : 0);
        return pred;
    }

  private:
    unsigned localHistBits_;
    std::vector<uint64_t> localHist_;
    std::vector<Counter2> localPred_;
    uint64_t globalMask_;
    std::vector<Counter2> globalPred_;
    std::vector<Counter2> choice_;
    uint64_t ghist_ = 0;
};

} // namespace mica::uarch
