/**
 * @file
 * Exact vantage-point tree over fingerprint vectors.
 *
 * The index must answer kNN and radius queries with *exactly* the
 * answer a brute-force scan gives — same neighbors, same distance
 * bits, same order — because the repo's determinism contract is
 * byte-identical reports for any execution strategy. Three choices
 * make that hold:
 *
 *  - results are totally ordered by (distance, id), so ties on
 *    distance (duplicated benchmarks exist!) have one canonical order;
 *  - every query evaluates the same l2Dist() expression per visited
 *    pair the brute path evaluates, so a distance value has one bit
 *    pattern no matter which path produced it;
 *  - pruning bounds are inclusive (a subtree is visited when it could
 *    hold a point at distance *equal* to the current cutoff), so an
 *    id tie-break winner at the cutoff distance is never discarded.
 *
 * Construction is deterministic: the vantage point of a partition is
 * its first id in build order, the rest are sorted by (distance to
 * vantage, id) and split at the positional median, giving a balanced
 * tree independent of input quirks. Nodes live in one flat array
 * (children by index), which serializes verbatim into the snapshot.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mica::index
{

/** One query result: distance to the query plus the fingerprint id. */
struct Neighbor
{
    double dist = 0.0;
    uint32_t id = 0;

    /** Canonical result order: by distance, ties by id. */
    bool
    operator<(const Neighbor &o) const
    {
        return dist != o.dist ? dist < o.dist : id < o.id;
    }

    bool
    operator==(const Neighbor &o) const
    {
        return dist == o.dist && id == o.id;
    }
};

/** Euclidean distance between two dim-wide vectors. */
double l2Dist(const double *a, const double *b, size_t dim);

/** Sentinel id meaning "exclude nothing" in queries. */
constexpr uint32_t kNoSkip = 0xffffffffu;

/** Vantage-point tree node, flat-array layout. */
struct VpNode
{
    /** Child sentinel: no subtree on that side. */
    static constexpr uint32_t kNil = 0xffffffffu;

    uint32_t point = 0;             ///< fingerprint id of the vantage
    uint32_t left = kNil;           ///< node index, dist <= threshold side
    uint32_t right = kNil;          ///< node index, dist >= threshold side
    double threshold = 0.0;         ///< median distance to the vantage
};

/**
 * The tree itself holds only structure (nodes + dimensionality); the
 * fingerprint vectors stay in their owning FingerprintSet and are
 * passed to every query. Queries against data the tree was not built
 * over are undefined.
 */
class VpTree
{
  public:
    VpTree() = default;

    /** Adopt nodes deserialized from a snapshot. */
    VpTree(std::vector<VpNode> nodes, size_t dim)
        : nodes_(std::move(nodes)), dim_(dim)
    {}

    /** Build over count dim-wide vectors stored flat at data. */
    static VpTree build(const double *data, size_t count, size_t dim);

    /**
     * Exact k nearest neighbors of q, ascending (distance, id) order.
     * @param skip fingerprint id to exclude (kNoSkip = none) — queries
     *        by an indexed benchmark exclude the benchmark itself
     */
    std::vector<Neighbor> knn(const double *data, const double *q,
                              size_t k, uint32_t skip = kNoSkip) const;

    /** All neighbors with dist <= r (inclusive), same order. */
    std::vector<Neighbor> radius(const double *data, const double *q,
                                 double r, uint32_t skip = kNoSkip) const;

    /** @return number of indexed points. */
    size_t size() const { return nodes_.size(); }

    size_t dim() const { return dim_; }

    /** @return flat node array (root at index 0; for the snapshot). */
    const std::vector<VpNode> &nodes() const { return nodes_; }

  private:
    struct KnnState;

    /** Per-query traversal tallies, flushed to telemetry per query. */
    struct VisitStats
    {
        uint32_t visited = 0;    ///< nodes whose distance was evaluated
        uint32_t pruned = 0;     ///< subtree links skipped by the bound
    };

    void knnVisit(const double *data, const double *q, uint32_t node,
                  KnnState &st) const;
    void radiusVisit(const double *data, const double *q, uint32_t node,
                     double r, uint32_t skip, std::vector<Neighbor> &out,
                     VisitStats &vs) const;

    std::vector<VpNode> nodes_;
    size_t dim_ = 0;
};

/**
 * Brute-force reference paths: scan every point, sort by
 * (distance, id). The tree is checked against these for bit equality
 * (tests, CLI --brute, CI cmp).
 */
std::vector<Neighbor> bruteKnn(const double *data, size_t count,
                               size_t dim, const double *q, size_t k,
                               uint32_t skip = kNoSkip);
std::vector<Neighbor> bruteRadius(const double *data, size_t count,
                                  size_t dim, const double *q, double r,
                                  uint32_t skip = kNoSkip);

} // namespace mica::index
