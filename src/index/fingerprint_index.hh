/**
 * @file
 * FingerprintIndex: the queryable workload-similarity index.
 *
 * Binds a FingerprintSet (the frozen vectors + embedding parameters)
 * to a VpTree and a flat-hash name→id map, and answers the three
 * queries the paper's methodology keeps re-deriving from scratch:
 * nearest neighbors of a workload (is this application already
 * covered?), everything within a similarity radius (the paper's
 * 20%-of-max threshold), and the most redundant benchmark pairs in a
 * population (which tuples waste simulation time).
 *
 * Every query has a brute-force reference path and the same
 * determinism contract as the rest of the repo: tree and brute
 * results are bit-identical, and batch queries fanned across a
 * ThreadPool are byte-identical for any worker count (each query
 * writes its own result slot; no reduction order exists to vary).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "index/fingerprint.hh"
#include "index/vp_tree.hh"
#include "util/flat_hash.hh"

namespace mica::pipeline
{
class ThreadPool;
} // namespace mica::pipeline

namespace mica::index
{

/** One redundant tuple: two benchmarks and their distance, a < b. */
struct RedundantPair
{
    double dist = 0.0;
    uint32_t a = 0;
    uint32_t b = 0;

    bool
    operator<(const RedundantPair &o) const
    {
        if (dist != o.dist)
            return dist < o.dist;
        return a != o.a ? a < o.a : b < o.b;
    }

    bool
    operator==(const RedundantPair &o) const
    {
        return dist == o.dist && a == o.a && b == o.b;
    }
};

class FingerprintIndex
{
  public:
    FingerprintIndex() = default;

    /** Fingerprint a raw dataset and index it. */
    static FingerprintIndex build(const Matrix &raw,
                                  const FingerprintOptions &opt = {});

    /**
     * Re-assemble from snapshot parts; the tree is adopted as-is (that
     * is the point of the snapshot — reopen without rebuilding).
     * @throw std::invalid_argument when tree and set disagree
     */
    static FingerprintIndex fromParts(FingerprintSet fps, VpTree tree);

    size_t size() const { return fps_.size(); }

    size_t dim() const { return fps_.dim; }

    const FingerprintSet &fingerprints() const { return fps_; }

    const VpTree &tree() const { return tree_; }

    /** @return fingerprint id for a benchmark name, or -1. */
    int64_t idOf(const std::string &name) const;

    /** @return benchmark name for a fingerprint id. */
    const std::string &nameOf(size_t id) const { return fps_.names[id]; }

    /**
     * k nearest indexed neighbors of indexed benchmark @p id, self
     * excluded, ascending (distance, id).
     * @param brute use the brute-force reference path
     */
    std::vector<Neighbor> knn(size_t id, size_t k,
                              bool brute = false) const;

    /** k nearest neighbors of an external raw row (embedded first). */
    std::vector<Neighbor> knnOfRaw(const std::vector<double> &rawRow,
                                   size_t k, bool brute = false) const;

    /** Indexed neighbors of @p id within r (inclusive), self excluded. */
    std::vector<Neighbor> radius(size_t id, double r,
                                 bool brute = false) const;

    /**
     * knn(id, k) for every indexed benchmark, fanned across @p pool
     * (nullptr = serial). Byte-identical for any worker count.
     */
    std::vector<std::vector<Neighbor>>
    batchKnn(size_t k, pipeline::ThreadPool *pool = nullptr,
             bool brute = false) const;

    /**
     * The topN closest (most redundant) pairs in the population,
     * ascending (distance, a, b). Per-benchmark kNN candidates are
     * fanned across @p pool, then merged serially in id order — any
     * globally top-N pair (a, b) has fewer than N pairs below it, so b
     * is within a's N nearest and the merge sees every winner.
     */
    std::vector<RedundantPair>
    mostRedundant(size_t topN, pipeline::ThreadPool *pool = nullptr,
                  bool brute = false) const;

  private:
    void buildNameMap();

    FingerprintSet fps_;
    VpTree tree_;

    /**
     * name→id over 64-bit name hashes (flat_hash keys are integral).
     * A full-hash collision flips collision_ and lookups fall back to
     * a scan; either way idOf verifies the name before answering.
     */
    util::FlatHashMap<uint64_t, uint32_t> nameMap_;
    bool collision_ = false;
};

} // namespace mica::index
