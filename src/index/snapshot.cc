#include "index/snapshot.hh"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/obs.hh"
#include "util/checked_io.hh"

namespace mica::index
{

namespace
{

constexpr char kMagic[8] = {'M', 'I', 'C', 'A', 'I', 'D', 'X', '\n'};

/**
 * Sanity ceilings so a corrupt header or length field is rejected
 * before any allocation is attempted. The per-field caps alone are
 * not enough — count and dim can each be in range while their
 * product asks for terabytes — so total payload sizes are bounded
 * too (kMaxTotalDoubles = 1 GiB of doubles).
 */
constexpr uint64_t kMaxCount = 1u << 20;
constexpr uint64_t kMaxDim = 1u << 16;
constexpr uint64_t kMaxTotalDoubles = 1ull << 27;
constexpr uint32_t kMaxStringLen = 4096;

template <typename T>
void
writePod(std::ostream &out, const T &v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
bool
readPod(std::istream &in, T &v)
{
    in.read(reinterpret_cast<char *>(&v), sizeof(T));
    return in.gcount() == sizeof(T);
}

void
writeString(std::ostream &out, const std::string &s)
{
    writePod(out, static_cast<uint32_t>(s.size()));
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool
readString(std::istream &in, std::string &s)
{
    uint32_t len = 0;
    if (!readPod(in, len) || len > kMaxStringLen)
        return false;
    s.resize(len);
    in.read(s.data(), len);
    return in.gcount() == static_cast<std::streamsize>(len);
}

void
writeDoubles(std::ostream &out, const std::vector<double> &v)
{
    writePod(out, static_cast<uint64_t>(v.size()));
    out.write(reinterpret_cast<const char *>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(double)));
}

bool
readDoubles(std::istream &in, std::vector<double> &v, uint64_t maxLen)
{
    uint64_t len = 0;
    if (!readPod(in, len) || len > maxLen)
        return false;
    v.resize(len);
    in.read(reinterpret_cast<char *>(v.data()),
            static_cast<std::streamsize>(len * sizeof(double)));
    return in.gcount() ==
        static_cast<std::streamsize>(len * sizeof(double));
}

bool
fail(std::string *why, const char *reason)
{
    if (why)
        *why = reason;
    return false;
}

} // namespace

bool
saveIndexSnapshot(const FingerprintIndex &idx, const std::string &path,
                  const std::string &configKey, std::string *why)
{
    obs::ObsSpan sp("index.snapshot.save");
    sp.arg("points", static_cast<uint64_t>(idx.fingerprints().size()));
    std::error_code ec;
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty())
        std::filesystem::create_directories(parent, ec);

    // Serialize to memory, then commit through a .tmp sibling and an
    // atomic rename, so a crash or I/O failure mid-write leaves the
    // previous snapshot intact instead of a truncated file (same
    // durability contract as ProfileStore::put).
    std::ostringstream out;
    const FingerprintSet &fps = idx.fingerprints();
    out.write(kMagic, sizeof(kMagic));
    writePod(out, kSnapshotVersion);
    writePod(out, FingerprintSet::kVersion);
    writeString(out, configKey);

    writePod(out, static_cast<uint64_t>(fps.size()));
    writePod(out, static_cast<uint64_t>(fps.dim));
    writePod(out, static_cast<uint64_t>(fps.sourceCols));
    writePod(out, static_cast<uint64_t>(fps.pcaDims));

    writePod(out, static_cast<uint64_t>(fps.columns.size()));
    for (size_t c : fps.columns)
        writePod(out, static_cast<uint64_t>(c));
    for (const auto &n : fps.names)
        writeString(out, n);
    writeDoubles(out, fps.colMean);
    writeDoubles(out, fps.colStddev);
    writeDoubles(out, fps.pcaMean);
    writeDoubles(out, fps.pcaBasis);
    writeDoubles(out, fps.data);

    const auto &nodes = idx.tree().nodes();
    writePod(out, static_cast<uint64_t>(nodes.size()));
    for (const VpNode &n : nodes) {
        writePod(out, n.point);
        writePod(out, n.left);
        writePod(out, n.right);
        writePod(out, n.threshold);
    }

    try {
        util::atomicWriteFile(path, out.str(), "index.snapshot");
    } catch (const util::IoError &e) {
        if (why)
            *why = e.what();
        return false;
    }
    return true;
}

bool
readSnapshotKey(const std::string &path, std::string *key)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    char magic[8] = {};
    in.read(magic, sizeof(magic));
    if (in.gcount() != sizeof(magic) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return false;
    uint32_t version = 0, fpVersion = 0;
    if (!readPod(in, version) || version != kSnapshotVersion ||
        !readPod(in, fpVersion) || fpVersion != FingerprintSet::kVersion)
        return false;
    return readString(in, *key);
}

SnapshotKeyProbe
probeSnapshotKey(const std::string &path)
{
    static obs::Counter probes("index.snapshot.probe");
    probes.add(1);
    SnapshotKeyProbe p;
    p.valid = readSnapshotKey(path, &p.key);
    if (!p.valid)
        p.key.clear();
    return p;
}

bool
loadIndexSnapshot(const std::string &path, const std::string &configKey,
                  FingerprintIndex *out, std::string *why)
{
    obs::ObsSpan sp("index.snapshot.load");
    static obs::Counter rejects("index.snapshot.reject");
    std::string bytes;
    try {
        bytes = util::readFileBytes(path, "index.load");
    } catch (const util::IoError &e) {
        if (e.code() == ENOENT)
            return fail(why, "no snapshot file");
        if (why)
            *why = e.what();
        return false;
    }
    std::istringstream in;
    in.str(bytes);
    // Every failure past this point is a real reject (a file existed
    // but did not validate); an absent snapshot is the normal first
    // run and stays uncounted. Counted via scope guard so each of the
    // early returns below is covered.
    struct RejectGuard
    {
        bool ok = false;
        ~RejectGuard()
        {
            if (!ok)
                rejects.add(1);
        }
        obs::Counter &rejects;
    } guard{false, rejects};

    char magic[8] = {};
    in.read(magic, sizeof(magic));
    if (in.gcount() != sizeof(magic) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return fail(why, "not an index snapshot");
    uint32_t version = 0, fpVersion = 0;
    if (!readPod(in, version) || version != kSnapshotVersion ||
        !readPod(in, fpVersion) || fpVersion != FingerprintSet::kVersion)
        return fail(why, "snapshot format version mismatch");
    std::string key;
    if (!readString(in, key))
        return fail(why, "truncated snapshot header");
    if (key != configKey) {
        if (why)
            *why = "snapshot key mismatch (built under '" + key +
                "', expected '" + configKey + "')";
        return false;
    }

    uint64_t count = 0, dim = 0, sourceCols = 0, pcaDims = 0, nc = 0;
    if (!readPod(in, count) || count > kMaxCount || !readPod(in, dim) ||
        dim > kMaxDim || !readPod(in, sourceCols) ||
        sourceCols > kMaxDim || !readPod(in, pcaDims) ||
        !readPod(in, nc) || nc > kMaxDim)
        return fail(why, "truncated or corrupt snapshot header");
    // Internal consistency pins every later allocation: pcaDims never
    // exceeds the column count, the fingerprint dimensionality is
    // fully determined by (pcaDims, nc), and the payloads are bounded.
    if (pcaDims > nc || dim != (pcaDims > 0 ? pcaDims : nc) ||
        count * dim > kMaxTotalDoubles ||
        pcaDims * nc > kMaxTotalDoubles)
        return fail(why, "corrupt snapshot header");

    FingerprintSet fps;
    fps.dim = dim;
    fps.sourceCols = sourceCols;
    fps.pcaDims = pcaDims;
    fps.columns.resize(nc);
    for (auto &c : fps.columns) {
        uint64_t v = 0;
        if (!readPod(in, v) || v >= sourceCols)
            return fail(why, "corrupt column table");
        c = static_cast<size_t>(v);
    }
    fps.names.resize(count);
    for (auto &n : fps.names) {
        if (!readString(in, n))
            return fail(why, "truncated name table");
    }
    // Length caps are the *expected* sizes given the already-validated
    // header counts, so a corrupt length field is rejected before any
    // resize rather than attempting a huge allocation.
    if (!readDoubles(in, fps.colMean, nc) ||
        !readDoubles(in, fps.colStddev, nc) ||
        !readDoubles(in, fps.pcaMean, nc) ||
        !readDoubles(in, fps.pcaBasis, pcaDims * nc) ||
        !readDoubles(in, fps.data, count * dim))
        return fail(why, "truncated snapshot payload");
    if (fps.colMean.size() != nc || fps.colStddev.size() != nc ||
        fps.pcaMean.size() != (pcaDims > 0 ? nc : 0) ||
        fps.pcaBasis.size() != pcaDims * nc ||
        fps.data.size() != count * dim)
        return fail(why, "snapshot payload shape mismatch");

    uint64_t nodeCount = 0;
    if (!readPod(in, nodeCount) || nodeCount != count)
        return fail(why, "corrupt tree node count");
    std::vector<VpNode> nodes(nodeCount);
    std::vector<uint8_t> refs(nodeCount, 0);
    for (auto &n : nodes) {
        if (!readPod(in, n.point) || !readPod(in, n.left) ||
            !readPod(in, n.right) || !readPod(in, n.threshold))
            return fail(why, "truncated tree nodes");
        if (n.point >= count ||
            (n.left != VpNode::kNil && n.left >= nodeCount) ||
            (n.right != VpNode::kNil && n.right >= nodeCount))
            return fail(why, "corrupt tree node");
        if (n.left != VpNode::kNil && refs[n.left] < 255)
            ++refs[n.left];
        if (n.right != VpNode::kNil && refs[n.right] < 255)
            ++refs[n.right];
    }
    // Structural sanity: a tree references every non-root node exactly
    // once and the root never. Anything else (self-links, shared
    // subtrees, cycles) would make queries visit nodes twice or
    // recurse forever instead of hitting the reject-and-rebuild path.
    for (uint64_t i = 0; i < nodeCount; ++i) {
        if (refs[i] != (i == 0 ? 0 : 1))
            return fail(why, "corrupt tree structure");
    }

    *out = FingerprintIndex::fromParts(
        std::move(fps), VpTree(std::move(nodes), dim));
    guard.ok = true;
    sp.arg("points", count);
    return true;
}

} // namespace mica::index
