#include "index/fingerprint.hh"

#include <stdexcept>

#include "stats/descriptive.hh"
#include "stats/pca.hh"

namespace mica::index
{

std::vector<double>
FingerprintSet::embed(const std::vector<double> &rawRow) const
{
    if (rawRow.size() != sourceCols)
        throw std::invalid_argument("embed: raw row has " +
                                    std::to_string(rawRow.size()) +
                                    " columns, fingerprint space expects " +
                                    std::to_string(sourceCols));
    // Select + z-score with the frozen population parameters. The
    // expression matches zscoreNormalize exactly (constant columns go
    // to zero), so in-population rows reproduce their stored vectors.
    std::vector<double> z(columns.size());
    for (size_t j = 0; j < columns.size(); ++j) {
        const double x = rawRow[columns[j]];
        z[j] = colStddev[j] > 0.0 ? (x - colMean[j]) / colStddev[j] : 0.0;
    }
    if (pcaDims == 0)
        return z;
    std::vector<double> out(pcaDims);
    for (size_t pc = 0; pc < pcaDims; ++pc) {
        double s = 0.0;
        const double *basis = pcaBasis.data() + pc * columns.size();
        for (size_t j = 0; j < columns.size(); ++j)
            s += (z[j] - pcaMean[j]) * basis[j];
        out[pc] = s;
    }
    return out;
}

FingerprintSet
buildFingerprints(const Matrix &raw, const FingerprintOptions &opt)
{
    FingerprintSet fps;
    fps.sourceCols = raw.cols();
    fps.columns = opt.columns;
    if (fps.columns.empty()) {
        fps.columns.resize(raw.cols());
        for (size_t c = 0; c < raw.cols(); ++c)
            fps.columns[c] = c;
    }
    for (size_t c : fps.columns) {
        if (c >= raw.cols())
            throw std::invalid_argument(
                "buildFingerprints: column index out of range");
    }

    // Freeze the normalization parameters over the selected columns.
    const size_t nc = fps.columns.size();
    fps.colMean.resize(nc);
    fps.colStddev.resize(nc);
    for (size_t j = 0; j < nc; ++j) {
        const auto col = raw.colVec(fps.columns[j]);
        fps.colMean[j] = mean(col);
        fps.colStddev[j] = stddev(col);
    }

    // Fit the optional PCA basis on the z-scored data, then freeze it.
    fps.pcaDims = std::min(opt.pcaDims, nc);
    if (fps.pcaDims > 0) {
        Matrix norm(raw.rows(), nc);
        for (size_t r = 0; r < raw.rows(); ++r) {
            for (size_t j = 0; j < nc; ++j) {
                const double x = raw.at(r, fps.columns[j]);
                norm.at(r, j) = fps.colStddev[j] > 0.0
                    ? (x - fps.colMean[j]) / fps.colStddev[j] : 0.0;
            }
        }
        const PcaResult pca = pcaFit(norm);
        fps.pcaDims = std::min(fps.pcaDims, pca.components.rows());
        fps.pcaMean = pca.colMeans;
        fps.pcaBasis.resize(fps.pcaDims * nc);
        for (size_t pc = 0; pc < fps.pcaDims; ++pc)
            for (size_t j = 0; j < nc; ++j)
                fps.pcaBasis[pc * nc + j] = pca.components.at(pc, j);
    }

    fps.dim = fps.pcaDims > 0 ? fps.pcaDims : nc;
    fps.names.reserve(raw.rows());
    fps.data.reserve(raw.rows() * fps.dim);
    for (size_t r = 0; r < raw.rows(); ++r) {
        fps.names.push_back(r < raw.rowNames.size()
                                ? raw.rowNames[r]
                                : "row" + std::to_string(r));
        // Every stored vector goes through embed(), the same path
        // later external queries take.
        const auto v = fps.embed(raw.rowVec(r));
        fps.data.insert(fps.data.end(), v.begin(), v.end());
    }
    return fps;
}

} // namespace mica::index
