#include "index/vp_tree.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "obs/obs.hh"

namespace mica::index
{

namespace
{

/**
 * Per-query flush of the traversal tallies: one counter add per
 * query, not per node, keeps the hot recursion free of registry
 * traffic (4096-query batches would otherwise pay it per visit).
 */
void
flushVisitStats(uint32_t visited, uint32_t pruned)
{
    static obs::Counter visitedC("index.query.nodes_visited");
    static obs::Counter prunedC("index.query.nodes_pruned");
    static obs::Histogram perQuery("index.query.visited");
    visitedC.add(visited);
    prunedC.add(pruned);
    perQuery.record(visited);
}

} // namespace

double
l2Dist(const double *a, const double *b, size_t dim)
{
    double s = 0.0;
    for (size_t c = 0; c < dim; ++c) {
        const double d = a[c] - b[c];
        s += d * d;
    }
    return std::sqrt(s);
}

namespace
{

/** (distance to current vantage, id) — the partition sort key. */
struct DistId
{
    double dist;
    uint32_t id;

    bool
    operator<(const DistId &o) const
    {
        return dist != o.dist ? dist < o.dist : id < o.id;
    }
};

struct Builder
{
    const double *data;
    size_t dim;
    std::vector<VpNode> nodes;
    std::vector<DistId> ids;    ///< one scratch array, partitioned in place

    /**
     * Build the partition ids[lo..hi): ids[lo] becomes the vantage,
     * the rest are sorted by (distance, id) in place and split at the
     * positional median, so the tree shape is a pure function of the
     * input vectors and no per-level copies are made.
     */
    uint32_t
    buildRange(size_t lo, size_t hi)
    {
        const uint32_t self = static_cast<uint32_t>(nodes.size());
        nodes.push_back(VpNode{});
        nodes[self].point = ids[lo].id;
        if (hi - lo == 1)
            return self;

        const double *vantage = data + ids[lo].id * dim;
        for (size_t i = lo + 1; i < hi; ++i)
            ids[i].dist = l2Dist(vantage, data + ids[i].id * dim, dim);
        std::sort(ids.begin() + static_cast<ptrdiff_t>(lo) + 1,
                  ids.begin() + static_cast<ptrdiff_t>(hi));

        const size_t m = lo + 1 + (hi - lo - 1) / 2;
        nodes[self].threshold = ids[m].dist;
        if (m > lo + 1)
            nodes[self].left = buildRange(lo + 1, m);
        nodes[self].right = buildRange(m, hi);
        return self;
    }
};

} // namespace

VpTree
VpTree::build(const double *data, size_t count, size_t dim)
{
    VpTree t;
    t.dim_ = dim;
    if (count == 0)
        return t;
    Builder b{data, dim, {}, {}};
    b.nodes.reserve(count);
    b.ids.resize(count);
    for (size_t i = 0; i < count; ++i)
        b.ids[i] = {0.0, static_cast<uint32_t>(i)};
    b.buildRange(0, count);
    t.nodes_ = std::move(b.nodes);
    return t;
}

struct VpTree::KnnState
{
    size_t k;
    uint32_t skip;
    VisitStats vs;
    // Max-heap ordered by (dist, id): top is the current worst keeper.
    std::priority_queue<Neighbor> heap;

    double
    tau() const
    {
        return heap.size() < k ? std::numeric_limits<double>::infinity()
                               : heap.top().dist;
    }

    void
    offer(const Neighbor &n)
    {
        if (n.id == skip)
            return;
        if (heap.size() < k) {
            heap.push(n);
        } else if (n < heap.top()) {
            heap.pop();
            heap.push(n);
        }
    }
};

void
VpTree::knnVisit(const double *data, const double *q, uint32_t node,
                 KnnState &st) const
{
    const VpNode &n = nodes_[node];
    const double d = l2Dist(q, data + n.point * dim_, dim_);
    ++st.vs.visited;
    st.offer({d, n.point});
    if (n.left == VpNode::kNil && n.right == VpNode::kNil)
        return;

    // Visit the side the query falls in first (shrinks tau sooner),
    // then the far side unless no point there can *tie or beat* the
    // current cutoff: left holds dist-to-vantage <= threshold, so its
    // points are >= d - threshold from q; right holds >= threshold,
    // so its points are >= threshold - d. Inclusive comparisons keep
    // equal-distance candidates alive for the id tie-break.
    const uint32_t near = d < n.threshold ? n.left : n.right;
    const uint32_t far = d < n.threshold ? n.right : n.left;
    if (near != VpNode::kNil)
        knnVisit(data, q, near, st);
    const double gap =
        d < n.threshold ? n.threshold - d : d - n.threshold;
    if (far != VpNode::kNil) {
        if (gap <= st.tau())
            knnVisit(data, q, far, st);
        else
            ++st.vs.pruned;
    }
}

std::vector<Neighbor>
VpTree::knn(const double *data, const double *q, size_t k,
            uint32_t skip) const
{
    std::vector<Neighbor> out;
    if (nodes_.empty() || k == 0)
        return out;
    KnnState st{k, skip, {}, {}};
    knnVisit(data, q, 0, st);
    flushVisitStats(st.vs.visited, st.vs.pruned);
    out.resize(st.heap.size());
    for (size_t i = st.heap.size(); i-- > 0;) {
        out[i] = st.heap.top();
        st.heap.pop();
    }
    return out;
}

void
VpTree::radiusVisit(const double *data, const double *q, uint32_t node,
                    double r, uint32_t skip, std::vector<Neighbor> &out,
                    VisitStats &vs) const
{
    const VpNode &n = nodes_[node];
    const double d = l2Dist(q, data + n.point * dim_, dim_);
    ++vs.visited;
    if (d <= r && n.point != skip)
        out.push_back({d, n.point});
    if (n.left != VpNode::kNil) {
        if (d - n.threshold <= r)
            radiusVisit(data, q, n.left, r, skip, out, vs);
        else
            ++vs.pruned;
    }
    if (n.right != VpNode::kNil) {
        if (n.threshold - d <= r)
            radiusVisit(data, q, n.right, r, skip, out, vs);
        else
            ++vs.pruned;
    }
}

std::vector<Neighbor>
VpTree::radius(const double *data, const double *q, double r,
               uint32_t skip) const
{
    std::vector<Neighbor> out;
    if (nodes_.empty())
        return out;
    VisitStats vs;
    radiusVisit(data, q, 0, r, skip, out, vs);
    flushVisitStats(vs.visited, vs.pruned);
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<Neighbor>
bruteKnn(const double *data, size_t count, size_t dim, const double *q,
         size_t k, uint32_t skip)
{
    std::vector<Neighbor> all;
    all.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        if (i == skip)
            continue;
        all.push_back(
            {l2Dist(q, data + i * dim, dim), static_cast<uint32_t>(i)});
    }
    std::sort(all.begin(), all.end());
    if (all.size() > k)
        all.resize(k);
    return all;
}

std::vector<Neighbor>
bruteRadius(const double *data, size_t count, size_t dim, const double *q,
            double r, uint32_t skip)
{
    std::vector<Neighbor> out;
    for (size_t i = 0; i < count; ++i) {
        if (i == skip)
            continue;
        const double d = l2Dist(q, data + i * dim, dim);
        if (d <= r)
            out.push_back({d, static_cast<uint32_t>(i)});
    }
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace mica::index
