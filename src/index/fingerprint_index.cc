#include "index/fingerprint_index.hh"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.hh"
#include "pipeline/thread_pool.hh"

namespace mica::index
{

namespace
{

/** FNV-1a over the name bytes, then avalanched for the flat map. */
uint64_t
nameHash(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return util::hashMix(h);
}

} // namespace

FingerprintIndex
FingerprintIndex::build(const Matrix &raw, const FingerprintOptions &opt)
{
    obs::ObsSpan sp("index.build");
    FingerprintIndex idx;
    idx.fps_ = buildFingerprints(raw, opt);
    idx.tree_ = VpTree::build(idx.fps_.data.data(), idx.fps_.size(),
                              idx.fps_.dim);
    idx.buildNameMap();
    sp.arg("points", static_cast<uint64_t>(idx.fps_.size()));
    sp.arg("dim", static_cast<uint64_t>(idx.fps_.dim));
    return idx;
}

FingerprintIndex
FingerprintIndex::fromParts(FingerprintSet fps, VpTree tree)
{
    if (tree.size() != fps.size() || tree.dim() != fps.dim)
        throw std::invalid_argument(
            "FingerprintIndex: tree does not match fingerprint set");
    FingerprintIndex idx;
    idx.fps_ = std::move(fps);
    idx.tree_ = std::move(tree);
    idx.buildNameMap();
    return idx;
}

void
FingerprintIndex::buildNameMap()
{
    nameMap_.clear();
    collision_ = false;
    nameMap_.reserve(fps_.size());
    for (size_t i = 0; i < fps_.size(); ++i) {
        auto [slot, inserted] = nameMap_.tryEmplace(
            nameHash(fps_.names[i]), static_cast<uint32_t>(i));
        if (!inserted && fps_.names[*slot] != fps_.names[i])
            collision_ = true;
    }
}

int64_t
FingerprintIndex::idOf(const std::string &name) const
{
    if (collision_) {
        for (size_t i = 0; i < fps_.size(); ++i) {
            if (fps_.names[i] == name)
                return static_cast<int64_t>(i);
        }
        return -1;
    }
    const uint32_t *id = nameMap_.find(nameHash(name));
    if (!id || fps_.names[*id] != name)
        return -1;
    return static_cast<int64_t>(*id);
}

std::vector<Neighbor>
FingerprintIndex::knn(size_t id, size_t k, bool brute) const
{
    const double *q = fps_.vec(id);
    const uint32_t skip = static_cast<uint32_t>(id);
    return brute ? bruteKnn(fps_.data.data(), fps_.size(), fps_.dim, q, k,
                            skip)
                 : tree_.knn(fps_.data.data(), q, k, skip);
}

std::vector<Neighbor>
FingerprintIndex::knnOfRaw(const std::vector<double> &rawRow, size_t k,
                           bool brute) const
{
    const std::vector<double> q = fps_.embed(rawRow);
    return brute ? bruteKnn(fps_.data.data(), fps_.size(), fps_.dim,
                            q.data(), k)
                 : tree_.knn(fps_.data.data(), q.data(), k);
}

std::vector<Neighbor>
FingerprintIndex::radius(size_t id, double r, bool brute) const
{
    const double *q = fps_.vec(id);
    const uint32_t skip = static_cast<uint32_t>(id);
    return brute ? bruteRadius(fps_.data.data(), fps_.size(), fps_.dim, q,
                               r, skip)
                 : tree_.radius(fps_.data.data(), q, r, skip);
}

std::vector<std::vector<Neighbor>>
FingerprintIndex::batchKnn(size_t k, pipeline::ThreadPool *pool,
                           bool brute) const
{
    const size_t n = fps_.size();
    obs::ObsSpan sp("index.batch_knn");
    sp.arg("queries", static_cast<uint64_t>(n));
    sp.arg("k", static_cast<uint64_t>(k));
    std::vector<std::vector<Neighbor>> out(n);
    const size_t blocks = pool && pool->workerCount() > 1
        ? std::min(n, pool->workerCount() * 4) : 1;
    pipeline::parallelBlocks(pool, blocks, [&](size_t b) {
        const size_t lo = n * b / blocks;
        const size_t hi = n * (b + 1) / blocks;
        for (size_t i = lo; i < hi; ++i)
            out[i] = knn(i, k, brute);
    });
    return out;
}

std::vector<RedundantPair>
FingerprintIndex::mostRedundant(size_t topN, pipeline::ThreadPool *pool,
                                bool brute) const
{
    const size_t n = fps_.size();
    if (n < 2 || topN == 0)
        return {};
    const size_t k = std::min(topN, n - 1);
    const auto perRow = batchKnn(k, pool, brute);

    // Serial merge in id order: canonicalize to a < b, drop the
    // duplicate each pair produces from its other endpoint.
    util::FlatHashSet<uint64_t> seen;
    seen.reserve(n * k);
    std::vector<RedundantPair> pairs;
    pairs.reserve(n * k / 2);
    for (size_t i = 0; i < n; ++i) {
        for (const Neighbor &nb : perRow[i]) {
            const uint32_t a = std::min<uint32_t>(i, nb.id);
            const uint32_t b = std::max<uint32_t>(i, nb.id);
            const uint64_t pairKey =
                (static_cast<uint64_t>(a) << 32) | b;
            if (seen.insert(pairKey))
                pairs.push_back({nb.dist, a, b});
        }
    }
    std::sort(pairs.begin(), pairs.end());
    if (pairs.size() > topN)
        pairs.resize(topN);
    return pairs;
}

} // namespace mica::index
