/**
 * @file
 * Workload fingerprints: canonicalized vectors for the similarity index.
 *
 * The paper compares benchmarks by Euclidean distance in a z-score
 * normalized characteristic space; a *fingerprint* is one benchmark's
 * position in that space, made durable. The catch with persisting such
 * vectors is that the normalization parameters (per-column mean and
 * standard deviation, and any PCA basis) are population statistics: a
 * query workload must be projected with the *same* parameters the
 * population was, or its distances are meaningless. A FingerprintSet
 * therefore freezes those parameters at build time and routes every
 * vector — population rows and later external queries alike — through
 * one embed() path, so a stored fingerprint and a fresh embedding of
 * the same raw profile are bit-identical.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "stats/matrix.hh"

namespace mica::index
{

/** Knobs that shape the fingerprint space. */
struct FingerprintOptions
{
    /**
     * Raw-matrix columns to fingerprint (empty = all columns). The GA
     * key-characteristic subset goes here for the reduced space.
     */
    std::vector<size_t> columns;

    /**
     * Project the normalized space onto this many principal components
     * (0 = no projection; the fingerprint is the z-scored vector).
     */
    size_t pcaDims = 0;
};

/**
 * A frozen set of fingerprints: the vectors plus every parameter
 * needed to embed new raw rows into the same space.
 */
struct FingerprintSet
{
    /** Bump when the embedding semantics change. */
    static constexpr uint32_t kVersion = 1;

    size_t dim = 0;                     ///< fingerprint dimensionality
    size_t sourceCols = 0;              ///< raw-matrix width expected by embed()
    std::vector<std::string> names;     ///< one per fingerprint, row order
    std::vector<double> data;           ///< flat row-major, size() x dim

    std::vector<size_t> columns;        ///< resolved raw columns used
    std::vector<double> colMean;        ///< per selected column, frozen
    std::vector<double> colStddev;      ///< per selected column, frozen

    size_t pcaDims = 0;                 ///< 0 = no projection
    std::vector<double> pcaMean;        ///< per selected column
    std::vector<double> pcaBasis;       ///< pcaDims x columns.size(), row-major

    /** @return number of fingerprints. */
    size_t size() const { return names.size(); }

    /** @return fingerprint vector i (dim doubles). */
    const double *vec(size_t i) const { return data.data() + i * dim; }

    /**
     * Canonicalize a raw characteristic row into this space with the
     * frozen parameters: select columns, z-score, optionally PCA
     * project. Embedding a population row reproduces its stored
     * fingerprint bit for bit.
     *
     * @param rawRow one raw row, sourceCols wide
     * @throw std::invalid_argument on a width mismatch
     */
    std::vector<double> embed(const std::vector<double> &rawRow) const;
};

/**
 * Build a fingerprint set over the rows of a raw dataset: freeze the
 * per-column mean/stddev (population stddev, exactly as
 * zscoreNormalize computes it, so fingerprints match a WorkloadSpace
 * built from the same matrix bit for bit), fit the optional PCA basis
 * on the normalized data, and embed every row.
 */
FingerprintSet buildFingerprints(const Matrix &raw,
                                 const FingerprintOptions &opt = {});

} // namespace mica::index
