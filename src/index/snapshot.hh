/**
 * @file
 * Versioned binary snapshot of a FingerprintIndex.
 *
 * Follows the ProfileStore's durability rules: the header carries a
 * format version and the caller's canonical configuration key
 * (collection config + fingerprint space), compared *exactly* on
 * load — a snapshot built under a different budget, suite filter,
 * characteristic subset, or PCA setting is rejected wholesale rather
 * than answering queries in a stale space. The payload is a flat,
 * offset-free dump (names, frozen normalization parameters, vectors,
 * VP-tree node array), so a reopen is a sequential read plus a
 * name-map rebuild — no re-profiling, no re-normalization, no tree
 * construction — and queries against the reloaded index are
 * byte-identical to queries against the freshly built one.
 */

#pragma once

#include <string>

#include "index/fingerprint_index.hh"

namespace mica::index
{

/** Bump when the snapshot layout or fingerprint semantics change. */
constexpr uint32_t kSnapshotVersion = 1;

/** Conventional snapshot file name inside a cache directory. */
inline std::string
snapshotPath(const std::string &dir)
{
    return dir + "/index.bin";
}

/**
 * Write the index to @p path (parent directories are created),
 * stamped with @p configKey. The commit is atomic (.tmp + rename); a
 * failure removes the .tmp and leaves any previous snapshot intact.
 * @param why on failure, a one-line reason naming the failed
 *        operation, the path, and strerror(errno)
 * @return false on I/O failure
 */
bool saveIndexSnapshot(const FingerprintIndex &idx,
                       const std::string &path,
                       const std::string &configKey,
                       std::string *why = nullptr);

/**
 * Read only the config key a snapshot was recorded under (header must
 * be a valid current-version snapshot).
 * @return false when the file is missing, foreign, or truncated
 */
bool readSnapshotKey(const std::string &path, std::string *key);

/** Result of a header-only snapshot probe. */
struct SnapshotKeyProbe
{
    bool valid = false;   ///< header parsed as a current-version snapshot
    std::string key;      ///< config key the snapshot was recorded under
};

/**
 * Probe a snapshot's header — a few hundred bytes, never the payload.
 * One probe answers both questions a caller has before committing to
 * a load: which space/pca the snapshot holds (key adoption) and
 * whether its key matches the wanted config (load vs. rebuild). Call
 * once and branch on the result; only a matching key justifies the
 * full-payload loadIndexSnapshot read.
 */
SnapshotKeyProbe probeSnapshotKey(const std::string &path);

/**
 * Load a snapshot recorded under exactly @p configKey.
 * @param why on failure, a one-line reason (missing file, version or
 *        key mismatch, truncation/corruption)
 * @return the reloaded index, or no value
 */
bool loadIndexSnapshot(const std::string &path,
                       const std::string &configKey,
                       FingerprintIndex *out, std::string *why = nullptr);

} // namespace mica::index
