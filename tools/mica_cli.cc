/**
 * @file
 * mica — command-line front end to the characterization library.
 *
 *   mica list [suite]              list registered benchmarks
 *   mica profile <name>|all        print (or CSV-dump) MICA profiles
 *   mica hpc <name>|all            print hardware-counter profiles
 *   mica distance <nameA> <nameB>  distances in both workload spaces
 *   mica select                    run GA feature selection
 *   mica cluster                   cluster benchmarks in the key space
 *   mica subset                    pick suite representatives
 *
 * Common flags: --budget=N, --cache=DIR, --jobs=N (0 = auto),
 * --csv=FILE (profile/hpc all), --maxk=N (cluster/subset). Profiling
 * AND the methodology verbs (select/cluster/subset) fan out across
 * --jobs worker threads with bit-identical output for any job count;
 * --cache names a config-keyed profile store that is reused across
 * runs, so methodology verbs re-profile nothing when a store exists.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "experiments/experiments.hh"
#include "isa/interpreter.hh"
#include "mica/dataset.hh"
#include "mica/runner.hh"
#include "methodology/cluster_report.hh"
#include "methodology/genetic_selector.hh"
#include "methodology/subsetting.hh"
#include "methodology/workload_space.hh"
#include "pipeline/thread_pool.hh"
#include "report/table.hh"
#include "stats/descriptive.hh"
#include "uarch/hpc_runner.hh"
#include "workloads/registry.hh"

using namespace mica;

namespace
{

int
usage()
{
    std::printf(
        "usage: mica <command> [args] [--budget=N] [--cache=DIR] "
        "[--jobs=N]\n"
        "  list [suite]              list registered benchmarks\n"
        "  profile <name>|all [--csv=FILE]   MICA profiles\n"
        "  hpc <name>|all [--csv=FILE]       hardware-counter profiles\n"
        "  distance <nameA> <nameB>  distances in both spaces\n"
        "  select                    GA key-characteristic selection\n"
        "  cluster [--maxk=N]        cluster benchmarks (key space)\n"
        "  subset [--maxk=N]         cluster-medoid representatives\n");
    return 2;
}

/**
 * Worker pool for the methodology verbs, sized from --jobs exactly
 * like the profiling pipeline: 1 = run on the calling thread (no
 * pool), 0 = one worker per hardware thread.
 */
std::unique_ptr<pipeline::ThreadPool>
methodologyPool(const experiments::DatasetConfig &cfg)
{
    if (cfg.jobs == 1)
        return nullptr;
    return std::make_unique<pipeline::ThreadPool>(cfg.jobs);
}

std::string
flagValue(int argc, char **argv, const char *flag)
{
    const size_t n = std::strlen(flag);
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], flag, n) == 0 && argv[i][n] == '=')
            return argv[i] + n + 1;
    }
    return "";
}

int
cmdList(int argc, char **argv)
{
    const auto &reg = workloads::BenchmarkRegistry::instance();
    std::string suite;
    if (argc >= 3 && std::strncmp(argv[2], "--", 2) != 0)
        suite = argv[2];

    report::TextTable t({"name", "paper I-cnt (M)"},
                        {report::Align::Left, report::Align::Right});
    size_t n = 0;
    for (const auto &e : reg.all()) {
        if (!suite.empty() && e.info.suite != suite)
            continue;
        t.addRow({e.info.fullName(),
                  std::to_string(e.info.paperICountM)});
        ++n;
    }
    std::printf("%s\n%zu benchmarks\n", t.render().c_str(), n);
    return 0;
}

int
cmdProfile(int argc, char **argv, const experiments::DatasetConfig &cfg,
           bool hpc)
{
    if (argc < 3)
        return usage();
    const std::string target = argv[2];
    const std::string csv = flagValue(argc, argv, "--csv");

    if (target == "all") {
        experiments::DatasetConfig runCfg = cfg;
        if (!runCfg.progress)
            runCfg.progress = pipeline::stderrProgress();
        const auto ds = experiments::collectSuiteDataset(runCfg);
        if (!csv.empty()) {
            if (hpc)
                saveMatrixCsv(csv, ds.hpcMatrix());
            else
                saveProfilesCsv(csv, ds.micaProfiles);
            std::printf("wrote %zu profiles to %s\n",
                        ds.benchmarks.size(), csv.c_str());
            return 0;
        }
        const Matrix m = hpc ? ds.hpcMatrix() : ds.micaMatrix();
        std::vector<std::string> headers = {"benchmark"};
        for (const auto &c : m.colNames)
            headers.push_back(c);
        report::TextTable t(std::move(headers));
        for (size_t r = 0; r < m.rows(); ++r) {
            std::vector<std::string> row = {m.rowNames[r]};
            for (size_t c = 0; c < m.cols(); ++c)
                row.push_back(report::TextTable::num(m(r, c), 3));
            t.addRow(std::move(row));
        }
        std::printf("%s\n", t.render().c_str());
        return 0;
    }

    const auto *e =
        workloads::BenchmarkRegistry::instance().find(target);
    if (!e) {
        std::fprintf(stderr, "unknown benchmark '%s' (try 'mica list')\n",
                     target.c_str());
        return 1;
    }
    const isa::Program prog = e->build();
    isa::Interpreter interp(prog);

    if (hpc) {
        const auto p =
            uarch::collectHwProfile(interp, target, cfg.maxInsts);
        report::TextTable t({"metric", "value"},
                            {report::Align::Left, report::Align::Right});
        const auto v = p.toVector();
        for (size_t i = 0; i < v.size(); ++i) {
            t.addRow({uarch::HwCounterProfile::metricNames()[i],
                      report::TextTable::num(v[i], 4)});
        }
        std::printf("%s\n%llu dynamic instructions\n", t.render().c_str(),
                    static_cast<unsigned long long>(p.instCount));
        return 0;
    }

    MicaRunnerConfig rc;
    rc.maxInsts = cfg.maxInsts;
    const MicaProfile p = collectMicaProfile(interp, target, rc);
    report::TextTable t({"no.", "characteristic", "value"},
                        {report::Align::Right, report::Align::Left,
                         report::Align::Right});
    for (size_t c = 0; c < kNumMicaChars; ++c) {
        t.addRow({std::to_string(c + 1), micaCharInfo(c).describe,
                  report::TextTable::num(p[c], 4)});
    }
    std::printf("%s\n%llu dynamic instructions\n", t.render().c_str(),
                static_cast<unsigned long long>(p.instCount));
    return 0;
}

int
cmdDistance(int argc, char **argv, const experiments::DatasetConfig &cfg)
{
    if (argc < 4)
        return usage();
    const auto ds = experiments::collectSuiteDataset(cfg);
    const size_t a = ds.indexOf(argv[2]);
    const size_t b = ds.indexOf(argv[3]);
    if (a == static_cast<size_t>(-1) || b == static_cast<size_t>(-1)) {
        std::fprintf(stderr, "unknown benchmark name\n");
        return 1;
    }
    const WorkloadSpace mica(ds.micaMatrix());
    const WorkloadSpace hpc(ds.hpcMatrix());
    std::printf("%s vs %s\n", argv[2], argv[3]);
    std::printf("  MICA-space distance: %7.3f  (population max %.3f)\n",
                mica.distances().at(a, b),
                mica.distances().maxDistance());
    std::printf("  HPC-space distance:  %7.3f  (population max %.3f)\n",
                hpc.distances().at(a, b), hpc.distances().maxDistance());
    const bool micaSim =
        mica.distances().at(a, b) <= 0.2 * mica.distances().maxDistance();
    const bool hpcSim =
        hpc.distances().at(a, b) <= 0.2 * hpc.distances().maxDistance();
    std::printf("  verdict at the paper's 20%% thresholds: "
                "inherently %s, counters say %s%s\n",
                micaSim ? "similar" : "dissimilar",
                hpcSim ? "similar" : "dissimilar",
                (!micaSim && hpcSim) ? "  [HPC-misleading pair]" : "");
    return 0;
}

int
cmdSelect(const experiments::DatasetConfig &cfg)
{
    const auto ds = experiments::collectSuiteDataset(cfg);
    auto pool = methodologyPool(cfg);
    pipeline::ThreadPool *p = pool.get();
    const WorkloadSpace mica(ds.micaMatrix(), p);
    GaConfig gcfg;
    const GaResult ga = geneticSelect(mica, gcfg, p);
    report::TextTable t({"Table II no.", "characteristic"},
                        {report::Align::Right, report::Align::Left});
    for (size_t s : ga.selected)
        t.addRow({std::to_string(s + 1), micaCharInfo(s).describe});
    std::printf("%s\nrho = %.3f, fitness = %.3f\n", t.render().c_str(),
                ga.distanceCorrelation, ga.fitness);
    return 0;
}

/** @return --maxk=N (default 70, the paper's sweep ceiling). */
size_t
maxKFlag(int argc, char **argv)
{
    const std::string v = flagValue(argc, argv, "--maxk");
    if (v.empty())
        return 70;
    const long n = std::atol(v.c_str());
    return n > 0 ? static_cast<size_t>(n) : 70;
}

/** GA-select the key characteristics and project the space onto them. */
Matrix
reducedKeySpace(const experiments::SuiteDataset &ds,
                pipeline::ThreadPool *p)
{
    Matrix mm = ds.micaMatrix();
    const WorkloadSpace mica(mm, p);
    GaConfig gcfg;
    const GaResult ga = geneticSelect(mica, gcfg, p);
    Matrix reduced = mica.normalized().selectCols(ga.selected);
    reduced.rowNames = mm.rowNames;
    return reduced;
}

int
cmdCluster(int argc, char **argv, const experiments::DatasetConfig &cfg)
{
    const auto ds = experiments::collectSuiteDataset(cfg);
    auto pool = methodologyPool(cfg);
    pipeline::ThreadPool *p = pool.get();
    const Matrix reduced = reducedKeySpace(ds, p);
    const ClusterReport rep =
        clusterBenchmarks(reduced, maxKFlag(argc, argv), 20061027, 0.9,
                          0.25, p);

    const auto &suites = experiments::suiteNames();
    std::vector<std::string> headers = {"cluster", "size"};
    for (const auto &s : suites)
        headers.push_back(s.substr(0, 3));
    headers.push_back("members");
    report::TextTable t(std::move(headers));
    for (const auto &c : rep.clusters) {
        std::vector<std::string> row = {std::to_string(c.id),
                                        std::to_string(c.members.size())};
        for (size_t h : rep.suiteHistogram(c, suites))
            row.push_back(std::to_string(h));
        // First few member names; the full list is in the assignment.
        std::string names;
        for (size_t i = 0; i < c.memberNames.size() && i < 3; ++i)
            names += (i ? ", " : "") + c.memberNames[i];
        if (c.memberNames.size() > 3) {
            names += " +" +
                std::to_string(c.memberNames.size() - 3) + " more";
        }
        row.push_back(std::move(names));
        t.addRow(std::move(row));
    }
    std::printf("%s\nchose K = %zu of %zu benchmarks "
                "(BIC within 90%% of max)\n",
                t.render().c_str(), rep.chosenK, reduced.rows());
    return 0;
}

int
cmdSubset(int argc, char **argv, const experiments::DatasetConfig &cfg)
{
    const auto ds = experiments::collectSuiteDataset(cfg);
    auto pool = methodologyPool(cfg);
    pipeline::ThreadPool *p = pool.get();
    const Matrix reduced = reducedKeySpace(ds, p);
    const SubsetResult r = selectRepresentatives(
        reduced, maxKFlag(argc, argv), 20061027, 0.9, 0.25, p);
    report::TextTable t({"representative", "covers"},
                        {report::Align::Left, report::Align::Right});
    for (const auto &rep : r.representatives)
        t.addRow({rep.name, std::to_string(rep.covers.size())});
    std::printf("%s\n%zu representatives for %zu benchmarks "
                "(%.1fX reduction)\n",
                t.render().c_str(), r.representatives.size(),
                r.populationSize, r.reductionFactor);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const auto cfg = experiments::configFromArgs(argc, argv);
    const std::string cmd = argv[1];
    if (cmd == "list")
        return cmdList(argc, argv);
    if (cmd == "profile")
        return cmdProfile(argc, argv, cfg, false);
    if (cmd == "hpc")
        return cmdProfile(argc, argv, cfg, true);
    if (cmd == "distance")
        return cmdDistance(argc, argv, cfg);
    if (cmd == "select")
        return cmdSelect(cfg);
    if (cmd == "cluster")
        return cmdCluster(argc, argv, cfg);
    if (cmd == "subset")
        return cmdSubset(argc, argv, cfg);
    return usage();
}
