/**
 * @file
 * mica — command-line front end to the characterization library.
 *
 *   mica list [suite]              list registered benchmarks
 *   mica profile <name>|all        print (or CSV-dump) MICA profiles
 *   mica hpc <name>|all            print hardware-counter profiles
 *   mica distance <nameA> <nameB>  distances in both workload spaces
 *   mica select                    run GA feature selection
 *   mica cluster                   cluster benchmarks in the key space
 *   mica subset                    pick suite representatives
 *   mica index build|query|redundant   persistent similarity index
 *   mica trace record <bench>|<suite>|all   record traces to disk
 *   mica trace convert <src> <dst> rewrite a trace v1 <-> v2
 *   mica trace ls [DIR]            list recorded trace files
 *   mica corpus init|ls|profile    sharded out-of-core trace corpora
 *   mica faults ls                 list fault-injection points
 *   mica faults crash-matrix       crash-consistency verification
 *   mica obs demo                  telemetry self-test
 *
 * Every verb also takes the telemetry sinks: --metrics=FILE writes a
 * metrics-registry snapshot as JSON on exit, --trace-out=FILE writes
 * the span trace as Chrome-tracing JSON (load in chrome://tracing or
 * ui.perfetto.dev), and --obs-summary prints a top-counters/slowest-
 * spans footer to stderr. Tracing is armed only when a trace sink or
 * the summary is requested, so undecorated runs pay no ring-buffer
 * cost.
 *
 * Common flags: --budget=N, --cache=DIR, --jobs=N (0 = auto),
 * --csv=FILE (profile/hpc all), --maxk=N (cluster/subset). Profiling
 * AND the methodology verbs (select/cluster/subset) fan out across
 * --jobs worker threads with bit-identical output for any job count;
 * --cache names a config-keyed profile store that is reused across
 * runs, so methodology verbs re-profile nothing when a store exists.
 * The index verbs persist a fingerprint-index snapshot next to that
 * store (<cache>/index.bin) and answer kNN/radius/most-redundant
 * queries from it without re-profiling anything.
 *
 * Every dataset verb also takes --suites=A,B (suite filter),
 * --traces=DIR (profile recorded trace files instead of interpreting
 * the registry kernels — byte-identical profiles, keyed into the
 * store like everything else) and --reader=mmap|stream (trace reader
 * choice; byte-identical either way).
 *
 * Failure semantics: dataset verbs quarantine failing benchmarks
 * (bad trace files at scan time, throwing profiling jobs) instead of
 * aborting, report them on stderr, and exit with the partial-failure
 * code 3; --max-failures=N caps the tolerance. --failpoints=SPEC (or
 * the MICA_FAILPOINTS environment variable) arms deterministic fault
 * injection at the named I/O sites — see util/failpoint.hh for the
 * grammar and `mica faults ls` for the site registry.
 *
 * Unknown --flags are rejected with an error naming the flag (each
 * verb validates against its accepted set via util::parseCliArgs).
 */

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "experiments/crash_matrix.hh"
#include "experiments/experiments.hh"
#include "index/fingerprint_index.hh"
#include "index/snapshot.hh"
#include "isa/interpreter.hh"
#include "mica/dataset.hh"
#include "mica/runner.hh"
#include "methodology/cluster_report.hh"
#include "methodology/genetic_selector.hh"
#include "methodology/subsetting.hh"
#include "methodology/workload_space.hh"
#include "obs/obs.hh"
#include "pipeline/corpus_runner.hh"
#include "pipeline/profile_store.hh"
#include "pipeline/thread_pool.hh"
#include "report/table.hh"
#include "service/client.hh"
#include "service/json.hh"
#include "service/query_engine.hh"
#include "service/server.hh"
#include "stats/descriptive.hh"
#include "trace/synthetic.hh"
#include "trace/trace_file.hh"
#include "uarch/hpc_runner.hh"
#include "util/arg_parse.hh"
#include "util/checked_io.hh"
#include "util/failpoint.hh"
#include "util/quantile.hh"
#include "workloads/corpus.hh"
#include "workloads/registry.hh"

using namespace mica;

namespace
{

/**
 * Exit codes. 0 = success, 1 = failure, 2 = usage error; the rest
 * distinguish failure classes scripts and CI branch on:
 * kExitPartial — the sweep completed but quarantined at least one
 * benchmark (results are valid for everything reported); kExitNoEnt /
 * kExitPerm — the named file or directory is missing / unreadable
 * (corruption stays exit 1: the file is there, its *contents* are the
 * problem). util::kCrashExitCode (97) is reserved for simulated
 * crashes under --failpoints=...abort.
 */
constexpr int kExitPartial = 3;
constexpr int kExitNoEnt = 4;
constexpr int kExitPerm = 5;

/** Map an errno (0 = corruption/unknown) onto the exit-code classes. */
int
exitCodeFor(int err)
{
    if (err == ENOENT)
        return kExitNoEnt;
    if (err == EACCES)
        return kExitPerm;
    return 1;
}

/**
 * Benchmarks quarantined across every dataset collection this run; a
 * clean verb exit escalates to kExitPartial when nonzero, so partial
 * results are never mistaken for complete ones.
 */
size_t gQuarantined = 0;

/**
 * collectSuiteDataset plus the CLI's failure reporting: quarantined
 * benchmarks are listed on stderr (deterministic order — scan
 * failures sorted by path, then sweep failures in registry order)
 * and counted into gQuarantined.
 */
experiments::SuiteDataset
collectReported(const experiments::DatasetConfig &cfg)
{
    auto ds = experiments::collectSuiteDataset(cfg);
    for (const auto &f : ds.failures) {
        std::fprintf(stderr, "mica: quarantined [%s] %s: %s\n",
                     f.phase.c_str(), f.bench.c_str(), f.error.c_str());
    }
    if (!ds.failures.empty()) {
        std::fprintf(stderr,
                     "mica: %zu benchmark(s) quarantined; continuing "
                     "with the remaining %zu\n",
                     ds.failures.size(), ds.benchmarks.size());
        gQuarantined += ds.failures.size();
    }
    return ds;
}

// usage() prints the top-level verb list; verbHelp() the one verb's
// page. Both render from the kVerbs dispatch table (defined after the
// handlers), so the verb list, per-verb `--help`, and the dispatch
// itself can never drift apart.
int usage();
int verbHelp(const std::string &verb);

/**
 * Worker pool for the methodology verbs, sized from --jobs exactly
 * like the profiling pipeline: 1 = run on the calling thread (no
 * pool), 0 = one worker per hardware thread.
 */
std::unique_ptr<pipeline::ThreadPool>
methodologyPool(const experiments::DatasetConfig &cfg)
{
    if (cfg.jobs == 1)
        return nullptr;
    return std::make_unique<pipeline::ThreadPool>(cfg.jobs);
}

int
cmdList(const util::CliArgs &args)
{
    const auto &reg = workloads::BenchmarkRegistry::instance();
    const std::string suite =
        args.positionals.size() >= 2 ? args.positionals[1] : "";

    report::TextTable t({"name", "paper I-cnt (M)"},
                        {report::Align::Left, report::Align::Right});
    size_t n = 0;
    for (const auto &e : reg.all()) {
        if (!suite.empty() && e.info.suite != suite)
            continue;
        t.addRow({e.info.fullName(),
                  std::to_string(e.info.paperICountM)});
        ++n;
    }
    std::printf("%s\n%zu benchmarks\n", t.render().c_str(), n);
    return 0;
}

int
cmdProfile(const util::CliArgs &args,
           const experiments::DatasetConfig &cfg, bool hpc)
{
    if (args.positionals.size() < 2)
        return usage();
    const std::string target = args.positionals[1];
    const std::string csv = args.value("csv");

    if (target == "all") {
        experiments::DatasetConfig runCfg = cfg;
        if (!runCfg.progress)
            runCfg.progress = pipeline::stderrProgress();
        const auto ds = collectReported(runCfg);
        if (!csv.empty()) {
            if (hpc)
                saveMatrixCsv(csv, ds.hpcMatrix());
            else
                saveProfilesCsv(csv, ds.micaProfiles);
            std::printf("wrote %zu profiles to %s\n",
                        ds.benchmarks.size(), csv.c_str());
            return 0;
        }
        const Matrix m = hpc ? ds.hpcMatrix() : ds.micaMatrix();
        std::vector<std::string> headers = {"benchmark"};
        for (const auto &c : m.colNames)
            headers.push_back(c);
        report::TextTable t(std::move(headers));
        for (size_t r = 0; r < m.rows(); ++r) {
            std::vector<std::string> row = {m.rowNames[r]};
            for (size_t c = 0; c < m.cols(); ++c)
                row.push_back(report::TextTable::num(m(r, c), 3));
            t.addRow(std::move(row));
        }
        std::printf("%s\n", t.render().c_str());
        return 0;
    }

    // Single benchmark: the record stream comes from the interpreter
    // or, under --traces, from the recorded file. Only the target's
    // own file is opened and validated — one unrelated bad trace in
    // the directory must not block (or cost reading) this query.
    isa::Program prog;
    std::unique_ptr<TraceSource> src;
    if (!cfg.traceDir.empty()) {
        std::string stem = target;
        const size_t slash = stem.find('/');
        if (slash != std::string::npos)
            stem.replace(slash, 1, "__");
        std::string found, foundExt;
        for (const char *ext : {".trace", ".csv", ".txt"}) {
            const std::string cand = cfg.traceDir + "/" + stem + ext;
            std::error_code ec;
            if (std::filesystem::is_regular_file(cand, ec)) {
                found = cand;
                foundExt = ext;
                break;
            }
        }
        if (found.empty()) {
            std::fprintf(stderr,
                         "'%s' has no trace in %s (try 'mica trace "
                         "ls %s')\n",
                         target.c_str(), cfg.traceDir.c_str(),
                         cfg.traceDir.c_str());
            return kExitNoEnt;
        }
        // Same budget guard traceBenchmarks applies to a full sweep.
        uint64_t records = 0;
        if (foundExt == ".trace") {
            const TraceFileInfo fi = probeTraceFile(found);
            records = fi.recordCount;
            src = openTraceFile(found, cfg.traceStream, &fi);
        } else {
            auto recs = readTextTrace(found);
            records = recs.size();
            src = std::make_unique<VectorTraceSource>(std::move(recs));
        }
        if (cfg.maxInsts != 0 && cfg.maxInsts > records) {
            throw TraceFileError(
                found, "holds " + std::to_string(records) +
                           " records but the profiling budget is " +
                           std::to_string(cfg.maxInsts) +
                           " — replay would silently diverge (lower "
                           "--budget or use 0)");
        }
    } else {
        const auto *e =
            workloads::BenchmarkRegistry::instance().find(target);
        if (!e) {
            std::fprintf(stderr,
                         "unknown benchmark '%s' (try 'mica list')\n",
                         target.c_str());
            return 1;
        }
        prog = e->build();
        src = std::make_unique<isa::Interpreter>(prog);
    }

    if (hpc) {
        const auto p =
            uarch::collectHwProfile(*src, target, cfg.maxInsts);
        report::TextTable t({"metric", "value"},
                            {report::Align::Left, report::Align::Right});
        const auto v = p.toVector();
        for (size_t i = 0; i < v.size(); ++i) {
            t.addRow({uarch::HwCounterProfile::metricNames()[i],
                      report::TextTable::num(v[i], 4)});
        }
        std::printf("%s\n%llu dynamic instructions\n", t.render().c_str(),
                    static_cast<unsigned long long>(p.instCount));
        return 0;
    }

    MicaRunnerConfig rc;
    rc.maxInsts = cfg.maxInsts;
    const MicaProfile p = collectMicaProfile(*src, target, rc);
    report::TextTable t({"no.", "characteristic", "value"},
                        {report::Align::Right, report::Align::Left,
                         report::Align::Right});
    for (size_t c = 0; c < kNumMicaChars; ++c) {
        t.addRow({std::to_string(c + 1), micaCharInfo(c).describe,
                  report::TextTable::num(p[c], 4)});
    }
    std::printf("%s\n%llu dynamic instructions\n", t.render().c_str(),
                static_cast<unsigned long long>(p.instCount));
    return 0;
}

int
cmdDistance(const util::CliArgs &args,
            const experiments::DatasetConfig &cfg)
{
    if (args.positionals.size() < 3)
        return usage();
    const std::string &nameA = args.positionals[1];
    const std::string &nameB = args.positionals[2];
    const auto ds = collectReported(cfg);
    const size_t a = ds.indexOf(nameA);
    const size_t b = ds.indexOf(nameB);
    if (a == static_cast<size_t>(-1) || b == static_cast<size_t>(-1)) {
        std::fprintf(stderr, "unknown benchmark name\n");
        return 1;
    }
    const WorkloadSpace mica(ds.micaMatrix());
    const WorkloadSpace hpc(ds.hpcMatrix());
    std::printf("%s vs %s\n", nameA.c_str(), nameB.c_str());
    std::printf("  MICA-space distance: %7.3f  (population max %.3f)\n",
                mica.distances().at(a, b),
                mica.distances().maxDistance());
    std::printf("  HPC-space distance:  %7.3f  (population max %.3f)\n",
                hpc.distances().at(a, b), hpc.distances().maxDistance());
    const bool micaSim =
        mica.distances().at(a, b) <= 0.2 * mica.distances().maxDistance();
    const bool hpcSim =
        hpc.distances().at(a, b) <= 0.2 * hpc.distances().maxDistance();
    std::printf("  verdict at the paper's 20%% thresholds: "
                "inherently %s, counters say %s%s\n",
                micaSim ? "similar" : "dissimilar",
                hpcSim ? "similar" : "dissimilar",
                (!micaSim && hpcSim) ? "  [HPC-misleading pair]" : "");
    return 0;
}

int
cmdSelect(const experiments::DatasetConfig &cfg)
{
    const auto ds = collectReported(cfg);
    auto pool = methodologyPool(cfg);
    pipeline::ThreadPool *p = pool.get();
    const WorkloadSpace mica(ds.micaMatrix(), p);
    GaConfig gcfg;
    const GaResult ga = geneticSelect(mica, gcfg, p);
    report::TextTable t({"Table II no.", "characteristic"},
                        {report::Align::Right, report::Align::Left});
    for (size_t s : ga.selected)
        t.addRow({std::to_string(s + 1), micaCharInfo(s).describe});
    std::printf("%s\nrho = %.3f, fitness = %.3f\n", t.render().c_str(),
                ga.distanceCorrelation, ga.fitness);
    return 0;
}

/**
 * Print an error and return true when --flag carries a value that is
 * not a plain decimal — a typo must not silently mean "the default".
 */
bool
rejectBadInt(const util::CliArgs &args, const char *verb,
             const char *flag)
{
    if (args.intOk(flag))
        return false;
    std::fprintf(stderr, "mica %s: --%s needs a non-negative integer "
                         "(got '%s')\n",
                 verb, flag, args.value(flag).c_str());
    return true;
}

/** @return --maxk=N (default 70, the paper's sweep ceiling). */
size_t
maxKFlag(const util::CliArgs &args)
{
    const long long n = args.intValue("maxk", 70);
    return n > 0 ? static_cast<size_t>(n) : 70;
}

/** GA-select the key characteristics and project the space onto them. */
Matrix
reducedKeySpace(const experiments::SuiteDataset &ds,
                pipeline::ThreadPool *p)
{
    Matrix mm = ds.micaMatrix();
    const WorkloadSpace mica(mm, p);
    GaConfig gcfg;
    const GaResult ga = geneticSelect(mica, gcfg, p);
    Matrix reduced = mica.normalized().selectCols(ga.selected);
    reduced.rowNames = mm.rowNames;
    return reduced;
}

int
cmdCluster(const util::CliArgs &args,
           const experiments::DatasetConfig &cfg)
{
    if (rejectBadInt(args, "cluster", "maxk"))
        return 2;
    const auto ds = collectReported(cfg);
    auto pool = methodologyPool(cfg);
    pipeline::ThreadPool *p = pool.get();
    const Matrix reduced = reducedKeySpace(ds, p);
    const ClusterReport rep =
        clusterBenchmarks(reduced, maxKFlag(args), 20061027, 0.9,
                          0.25, p);

    const auto &suites = experiments::suiteNames();
    std::vector<std::string> headers = {"cluster", "size"};
    for (const auto &s : suites)
        headers.push_back(s.substr(0, 3));
    headers.push_back("members");
    report::TextTable t(std::move(headers));
    for (const auto &c : rep.clusters) {
        std::vector<std::string> row = {std::to_string(c.id),
                                        std::to_string(c.members.size())};
        for (size_t h : rep.suiteHistogram(c, suites))
            row.push_back(std::to_string(h));
        // First few member names; the full list is in the assignment.
        std::string names;
        for (size_t i = 0; i < c.memberNames.size() && i < 3; ++i)
            names += (i ? ", " : "") + c.memberNames[i];
        if (c.memberNames.size() > 3) {
            names += " +" +
                std::to_string(c.memberNames.size() - 3) + " more";
        }
        row.push_back(std::move(names));
        t.addRow(std::move(row));
    }
    std::printf("%s\nchose K = %zu of %zu benchmarks "
                "(BIC within 90%% of max)\n",
                t.render().c_str(), rep.chosenK, reduced.rows());
    return 0;
}

int
cmdSubset(const util::CliArgs &args,
          const experiments::DatasetConfig &cfg)
{
    if (rejectBadInt(args, "subset", "maxk"))
        return 2;
    const auto ds = collectReported(cfg);
    auto pool = methodologyPool(cfg);
    pipeline::ThreadPool *p = pool.get();
    const Matrix reduced = reducedKeySpace(ds, p);
    const SubsetResult r = selectRepresentatives(
        reduced, maxKFlag(args), 20061027, 0.9, 0.25, p);
    report::TextTable t({"representative", "covers"},
                        {report::Align::Left, report::Align::Right});
    for (const auto &rep : r.representatives)
        t.addRow({rep.name, std::to_string(rep.covers.size())});
    std::printf("%s\n%zu representatives for %zu benchmarks "
                "(%.1fX reduction)\n",
                t.render().c_str(), r.representatives.size(),
                r.populationSize, r.reductionFactor);
    return 0;
}

// ----------------------------------------------------------------------
// index verbs: persistent workload-fingerprint similarity index.
// ----------------------------------------------------------------------

/**
 * Reopen the snapshot, or (re)build and persist it when missing or
 * keyed to a different config. The decision comes from @p probe — the
 * header was already read exactly once by the caller (for space/pca
 * adoption); the full payload is only read when the probed key
 * matches, never to *discover* a mismatch. Status goes to stderr so
 * reports on stdout stay byte-comparable between the reload and
 * fresh-build paths.
 */
index::FingerprintIndex
openOrBuildIndex(const experiments::DatasetConfig &cfg,
                 const index::SnapshotKeyProbe &probe,
                 const std::string &space, size_t pca,
                 pipeline::ThreadPool *pool)
{
    const std::string path = index::snapshotPath(cfg.cacheDir);
    const std::string key = service::indexKey(cfg, space, pca);
    index::FingerprintIndex idx;
    std::string why;
    if (probe.valid && probe.key == key) {
        if (index::loadIndexSnapshot(path, key, &idx, &why))
            return idx;
        std::fprintf(stderr, "index: %s; rebuilding\n", why.c_str());
    } else if (probe.valid) {
        std::fprintf(stderr,
                     "index: snapshot key mismatch (built under '%s', "
                     "expected '%s'); rebuilding\n",
                     probe.key.c_str(), key.c_str());
    } else {
        std::fprintf(stderr, "index: no snapshot file; rebuilding\n");
    }
    idx = service::indexFromDataset(collectReported(cfg), space, pca,
                                    pool);
    if (!index::saveIndexSnapshot(idx, path, key, &why))
        std::fprintf(stderr, "index: warning: snapshot not written: %s\n",
                     why.c_str());
    return idx;
}

/** One "rank / benchmark / distance" table from a neighbor list. */
void
printNeighbors(const index::FingerprintIndex &idx,
               const std::vector<index::Neighbor> &neighbors,
               const std::string &title)
{
    report::TextTable t({"rank", "benchmark", "distance"},
                        {report::Align::Right, report::Align::Left,
                         report::Align::Right});
    for (size_t i = 0; i < neighbors.size(); ++i) {
        t.addRow({std::to_string(i + 1), idx.nameOf(neighbors[i].id),
                  report::TextTable::num(neighbors[i].dist, 4)});
    }
    std::printf("%s\n", t.render(title).c_str());
}

int
cmdIndex(const util::CliArgs &args, const experiments::DatasetConfig &cfg)
{
    if (args.positionals.size() < 2)
        return usage();
    const std::string sub = args.positionals[1];

    // A typo'd numeric value must not silently become the default.
    for (const char *flag : {"pca", "k", "top"}) {
        if (rejectBadInt(args, "index", flag))
            return 2;
    }

    service::SpaceChoice sc;
    sc.space = args.value("space", "mica");
    sc.pca = static_cast<size_t>(args.intValue("pca", 0));
    sc.given = args.has("space") || args.has("pca");
    const bool brute = args.has("brute");

    // The snapshot lives next to the profile store; without --cache it
    // still needs a durable home, so a default directory steps in.
    experiments::DatasetConfig icfg = cfg;
    if (icfg.cacheDir.empty())
        icfg.cacheDir = ".mica-index";

    // Query verbs answer from whatever space the snapshot holds
    // unless told otherwise; `build` always uses the explicit flags.
    // One header probe serves both the adoption and the later
    // load-vs-rebuild decision — the payload is never read (or
    // re-validated) just to learn the key.
    index::SnapshotKeyProbe probe;
    if (sub != "build") {
        probe = index::probeSnapshotKey(
            index::snapshotPath(icfg.cacheDir));
        if (probe.valid)
            service::adoptSpaceFromKey(probe.key, &sc);
    }
    std::string space = sc.space;
    size_t pca = sc.pca;
    if (space != "mica" && space != "hpc" && space != "key") {
        std::fprintf(stderr,
                     "mica index: --space must be mica, hpc, or key "
                     "(got '%s')\n", space.c_str());
        return 2;
    }
    auto pool = methodologyPool(icfg);
    pipeline::ThreadPool *p = pool.get();

    if (sub == "build") {
        const index::FingerprintIndex idx = service::indexFromDataset(
            collectReported(icfg), space, pca, p);
        const std::string path = index::snapshotPath(icfg.cacheDir);
        std::string why;
        if (!index::saveIndexSnapshot(idx, path,
                                      service::indexKey(icfg, space, pca),
                                      &why)) {
            std::fprintf(stderr, "mica index build: %s\n", why.c_str());
            return 1;
        }
        std::printf("indexed %zu fingerprints (dim %zu, space %s, "
                    "pca %zu)\nsnapshot: %s\n",
                    idx.size(), idx.dim(), space.c_str(), pca,
                    path.c_str());
        return 0;
    }

    if (sub == "query") {
        if (args.positionals.size() < 3)
            return usage();
        const std::string target = args.positionals[2];
        const size_t k = static_cast<size_t>(args.intValue("k", 10));
        const bool hasRadius = args.has("radius");
        if (hasRadius && args.has("k")) {
            std::fprintf(stderr, "mica index query: give either --k or "
                                 "--radius, not both\n");
            return 2;
        }
        const index::FingerprintIndex idx =
            openOrBuildIndex(icfg, probe, space, pca, p);

        if (target == "all") {
            if (hasRadius) {
                std::fprintf(stderr, "mica index query: --radius needs "
                                     "a single benchmark, not 'all'\n");
                return 2;
            }
            const auto results = idx.batchKnn(k, p, brute);
            for (size_t i = 0; i < results.size(); ++i) {
                std::printf("%s ->", idx.nameOf(i).c_str());
                for (const auto &nb : results[i]) {
                    std::printf("  %s:%s", idx.nameOf(nb.id).c_str(),
                                report::TextTable::num(nb.dist, 4)
                                    .c_str());
                }
                std::printf("\n");
            }
            std::printf("%zu benchmarks, k=%zu, space %s, dim %zu\n",
                        results.size(), k, space.c_str(), idx.dim());
            return 0;
        }

        const int64_t id = idx.idOf(target);
        if (id < 0) {
            std::fprintf(stderr, "'%s' is not in the index (see 'mica "
                                 "list'; rebuild with 'mica index "
                                 "build' after config changes)\n",
                         target.c_str());
            return 1;
        }
        if (hasRadius) {
            // Strict parse: a typo'd radius must not silently become
            // 0.0 and report "no neighbors".
            const std::string rv = args.value("radius");
            char *end = nullptr;
            const double r =
                rv.empty() ? -1.0 : std::strtod(rv.c_str(), &end);
            if (rv.empty() || *end != '\0' || !(r >= 0.0)) {
                std::fprintf(stderr, "mica index query: --radius needs "
                                     "a non-negative number (got "
                                     "'%s')\n", rv.c_str());
                return 2;
            }
            printNeighbors(idx,
                           idx.radius(static_cast<size_t>(id), r, brute),
                           target + ": neighbors within " +
                               report::TextTable::num(r, 4));
        } else {
            printNeighbors(idx,
                           idx.knn(static_cast<size_t>(id), k, brute),
                           target + ": " + std::to_string(k) +
                               " nearest");
        }
        return 0;
    }

    if (sub == "redundant") {
        const size_t top = static_cast<size_t>(args.intValue("top", 10));
        const index::FingerprintIndex idx =
            openOrBuildIndex(icfg, probe, space, pca, p);
        const auto pairs = idx.mostRedundant(top, p, brute);
        report::TextTable t({"rank", "benchmark A", "benchmark B",
                             "distance"},
                            {report::Align::Right, report::Align::Left,
                             report::Align::Left, report::Align::Right});
        for (size_t i = 0; i < pairs.size(); ++i) {
            t.addRow({std::to_string(i + 1), idx.nameOf(pairs[i].a),
                      idx.nameOf(pairs[i].b),
                      report::TextTable::num(pairs[i].dist, 4)});
        }
        std::printf("%s\n%zu most redundant of %zu benchmarks "
                    "(space %s)\n",
                    t.render("Most redundant pairs").c_str(),
                    pairs.size(), idx.size(), space.c_str());
        return 0;
    }
    return usage();
}

// ----------------------------------------------------------------------
// service verbs: the query daemon (`serve`), the one-shot protocol
// front end (`query` — byte-identical to the daemon's replies, CI
// cmp's them), and the load generator (`serve-bench`).
// ----------------------------------------------------------------------

/** --space/--pca as a SpaceChoice (shared by serve and query). */
service::SpaceChoice
spaceChoiceFromArgs(const util::CliArgs &args)
{
    service::SpaceChoice sc;
    sc.space = args.value("space", "mica");
    sc.pca = static_cast<size_t>(args.intValue("pca", 0));
    sc.given = args.has("space") || args.has("pca");
    return sc;
}

/** Build the immutable query snapshot the way every front end must. */
std::shared_ptr<const service::ServerSnapshot>
buildSnapshotReported(const experiments::DatasetConfig &cfg,
                      const service::SpaceChoice &sc,
                      pipeline::ThreadPool *pool, std::string *err)
{
    return service::buildServerSnapshot(
        cfg, sc, pool, /*generation=*/0,
        [](const experiments::DatasetConfig &c) {
            return collectReported(c);
        },
        err);
}

/**
 * The running daemon, for the signal handlers. requestStop() is
 * async-signal-safe (an atomic store plus one write() to the loop's
 * self-pipe), so SIGINT/SIGTERM translate directly into a graceful
 * drain instead of killing in-flight queries.
 */
service::Server *gServer = nullptr;

extern "C" void
serveSignalHandler(int)
{
    if (gServer)
        gServer->requestStop();
}

int
cmdServe(const util::CliArgs &args, const experiments::DatasetConfig &cfg)
{
    for (const char *flag :
         {"pca", "max-conns", "drain-ms", "metrics-interval"}) {
        if (rejectBadInt(args, "serve", flag))
            return 2;
    }
    const int64_t metricsInterval = args.intValue("metrics-interval", 0);
    if (args.has("metrics-interval")) {
        if (metricsInterval <= 0) {
            std::fprintf(stderr, "mica serve: --metrics-interval must "
                                 "be a positive number of seconds\n");
            return 2;
        }
        if (args.value("metrics").empty()) {
            std::fprintf(stderr,
                         "mica serve: --metrics-interval needs "
                         "--metrics=FILE for the sink path\n");
            return 2;
        }
    }
    service::SpaceChoice sc = spaceChoiceFromArgs(args);
    experiments::DatasetConfig icfg = cfg;
    if (icfg.cacheDir.empty())
        icfg.cacheDir = ".mica-index";
    if (!icfg.progress)
        icfg.progress = pipeline::stderrProgress();

    auto pool = methodologyPool(icfg);
    std::string err;
    auto snap = buildSnapshotReported(icfg, sc, pool.get(), &err);
    if (!snap) {
        std::fprintf(stderr, "mica serve: %s\n", err.c_str());
        return 1;
    }

    service::ServerOptions opt;
    opt.address = args.value("listen", "unix:mica.sock");
    opt.jobs = icfg.jobs;
    opt.maxConnections =
        static_cast<size_t>(args.intValue("max-conns", 256));
    opt.drainDeadlineMs =
        static_cast<uint64_t>(args.intValue("drain-ms", 5000));
    if (metricsInterval > 0) {
        opt.metricsPath = args.value("metrics");
        opt.metricsIntervalMs =
            static_cast<uint64_t>(metricsInterval) * 1000;
    }

    service::Server server(opt, snap, icfg, sc,
                           [](const experiments::DatasetConfig &c) {
                               return collectReported(c);
                           });
    if (!server.start(&err)) {
        std::fprintf(stderr, "mica serve: %s\n", err.c_str());
        return 1;
    }
    gServer = &server;
    std::signal(SIGINT, serveSignalHandler);
    std::signal(SIGTERM, serveSignalHandler);

    // The ready line goes to stdout (and is flushed) so wrappers can
    // wait for it before connecting.
    std::printf("mica serve: listening on %s (%zu benchmarks, "
                "space %s, generation %llu)\n",
                server.boundAddress().c_str(),
                snap->ds.benchmarks.size(), snap->space.c_str(),
                static_cast<unsigned long long>(snap->generation));
    std::fflush(stdout);

    const int rc = server.run();

    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    gServer = nullptr;
    std::fprintf(stderr, "mica serve: drained, shutting down\n");
    return rc;
}

int
cmdQuery(const util::CliArgs &args, const experiments::DatasetConfig &cfg)
{
    if (args.positionals.size() < 2)
        return usage();
    if (rejectBadInt(args, "query", "pca"))
        return 2;
    const std::string reqArg = args.positionals[1];

    // "-" streams request lines from stdin; anything else is one
    // request given as a single (shell-quoted) argument.
    std::vector<std::string> lines;
    if (reqArg == "-") {
        std::string line;
        while (std::getline(std::cin, line)) {
            if (!line.empty())
                lines.push_back(line);
        }
    } else {
        lines.push_back(reqArg);
    }

    const std::string connect = args.value("connect");
    if (!connect.empty()) {
        service::ServiceClient cli;
        std::string err;
        if (!cli.connect(connect, &err)) {
            std::fprintf(stderr, "mica query: %s\n", err.c_str());
            return 1;
        }
        for (const auto &line : lines) {
            std::string reply;
            if (!cli.request(line, &reply, &err)) {
                std::fprintf(stderr, "mica query: %s\n", err.c_str());
                return 1;
            }
            std::printf("%s\n", reply.c_str());
        }
        return 0;
    }

    // Local one-shot: the same snapshot build and the same
    // executeLine path the daemon runs, so the printed line is
    // byte-identical to a server's reply for the same request.
    service::SpaceChoice sc = spaceChoiceFromArgs(args);
    experiments::DatasetConfig icfg = cfg;
    if (icfg.cacheDir.empty())
        icfg.cacheDir = ".mica-index";
    auto pool = methodologyPool(icfg);
    std::string err;
    auto snap = buildSnapshotReported(icfg, sc, pool.get(), &err);
    if (!snap) {
        std::fprintf(stderr, "mica query: %s\n", err.c_str());
        return 1;
    }
    for (const auto &line : lines)
        std::printf("%s\n", service::executeLine(*snap, line).c_str());
    return 0;
}

int
cmdServeBench(const util::CliArgs &args,
              const experiments::DatasetConfig &)
{
    for (const char *flag : {"conns", "requests"}) {
        if (rejectBadInt(args, "serve-bench", flag))
            return 2;
    }
    const std::string connect = args.value("connect");
    if (connect.empty()) {
        std::fprintf(stderr,
                     "mica serve-bench: --connect=ADDR is required\n");
        return 2;
    }
    const size_t conns =
        static_cast<size_t>(args.intValue("conns", 4));
    const size_t requests =
        static_cast<size_t>(args.intValue("requests", 100));
    const std::string bench = args.value("bench");
    if (conns == 0 || requests == 0) {
        std::fprintf(stderr, "mica serve-bench: --conns and --requests "
                             "must be positive\n");
        return 2;
    }

    // Per-connection request mix, rotated deterministically: cheap ops
    // (ping/stats), a mid-weight scan (suites), and the heavy
    // population query (redundant). --bench adds kNN of a real
    // benchmark to the rotation.
    std::vector<std::string> mix = {
        "{\"op\":\"ping\"}",
        "{\"op\":\"stats\"}",
        "{\"op\":\"suites\"}",
        "{\"op\":\"redundant\",\"top\":5}",
    };
    std::vector<std::string> opNames = {"ping", "stats", "suites",
                                        "redundant"};
    if (!bench.empty()) {
        mix.push_back("{\"op\":\"knn\",\"bench\":\"" + bench +
                      "\",\"k\":5}");
        opNames.push_back("knn");
    }

    // Per-op round-trip sketches: each worker records into private
    // sketches (no contention on the timed path) and merges them into
    // the shared set once, after its connection is done.
    std::vector<util::QuantileSketch> rtt(mix.size());
    std::mutex rttMu;

    std::atomic<uint64_t> okCount{0}, failCount{0};
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    workers.reserve(conns);
    for (size_t c = 0; c < conns; ++c) {
        workers.emplace_back([&, c] {
            service::ServiceClient cli;
            std::string err;
            if (!cli.connect(connect, &err)) {
                failCount.fetch_add(requests);
                return;
            }
            std::vector<util::QuantileSketch> local(mix.size());
            for (size_t i = 0; i < requests; ++i) {
                const size_t slot = (c + i) % mix.size();
                const std::string &line = mix[slot];
                std::string reply;
                const auto r0 = std::chrono::steady_clock::now();
                const bool ok = cli.request(line, &reply, &err) &&
                    reply.find("\"ok\":true") != std::string::npos;
                const auto rtUs =
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - r0)
                        .count() /
                    1000.0;
                if (ok) {
                    okCount.fetch_add(1);
                    local[slot].add(rtUs);
                } else {
                    failCount.fetch_add(1);
                }
            }
            std::lock_guard<std::mutex> lk(rttMu);
            for (size_t s = 0; s < mix.size(); ++s)
                rtt[s].merge(local[s]);
        });
    }
    for (auto &w : workers)
        w.join();
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();

    const uint64_t total = okCount.load() + failCount.load();
    const double secs = static_cast<double>(elapsed) / 1e6;
    std::printf("serve-bench: %zu conns x %zu requests = %llu total, "
                "%llu ok, %llu failed\n",
                conns, requests,
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(okCount.load()),
                static_cast<unsigned long long>(failCount.load()));
    std::printf("serve-bench: %.3f s, %.0f req/s\n", secs,
                secs > 0 ? static_cast<double>(total) / secs : 0.0);
    for (size_t s = 0; s < mix.size(); ++s) {
        if (rtt[s].empty())
            continue;
        std::printf("serve-bench: rtt %-9s p50=%.1fus p90=%.1fus "
                    "p99=%.1fus max=%.1fus (n=%llu)\n",
                    opNames[s].c_str(), rtt[s].quantile(0.50),
                    rtt[s].quantile(0.90), rtt[s].quantile(0.99),
                    rtt[s].max(),
                    static_cast<unsigned long long>(rtt[s].count()));
    }
    return failCount.load() == 0 ? 0 : 1;
}

// ----------------------------------------------------------------------
// trace verbs: record interpreter runs to disk; list recorded files.
// ----------------------------------------------------------------------

/** Filename for one benchmark ("suite/prog.in" -> "suite__prog.in"). */
std::string
traceFileName(const workloads::BenchmarkInfo &info)
{
    std::string stem = info.fullName();
    const size_t slash = stem.find('/');
    if (slash != std::string::npos)
        stem.replace(slash, 1, "__");
    return stem + ".trace";
}

/**
 * Parse a --format=v1|v2 flag into a trace format version.
 * @return 0 on a bad value (after printing the complaint).
 */
uint32_t
traceFormatFlag(const util::CliArgs &args, const char *verb,
                uint32_t fallback)
{
    if (!args.has("format"))
        return fallback;
    const std::string f = args.value("format");
    if (f == "v1")
        return kTraceFormatV1;
    if (f == "v2")
        return kTraceFormatV2;
    std::fprintf(stderr,
                 "mica trace %s: --format must be v1 or v2 (got '%s')\n",
                 verb, f.c_str());
    return 0;
}

/**
 * Interpret one benchmark and tee every record to a trace file.
 * @return records written.
 */
uint64_t
recordOne(const workloads::BenchmarkEntry &e, const std::string &path,
          uint64_t maxInsts, uint32_t version)
{
    const isa::Program prog = e.build();
    isa::Interpreter interp(prog);
    TraceFileWriter writer(path, version);
    RecordingSource tee(interp, writer);
    std::vector<InstRecord> buf(TraceFileWriter::kChunkRecords);
    uint64_t n = 0;
    for (;;) {
        size_t want = buf.size();
        if (maxInsts != 0 && maxInsts - n < want)
            want = static_cast<size_t>(maxInsts - n);
        if (want == 0)
            break;
        const InstRecord *span = nullptr;
        const size_t got = tee.nextSpan(span, buf.data(), want);
        if (got == 0)
            break;
        n += got;
    }
    writer.close();
    return n;
}

int
cmdTraceRecord(const util::CliArgs &args,
               const experiments::DatasetConfig &cfg)
{
    if (args.positionals.size() < 3)
        return usage();
    const std::string target = args.positionals[2];
    const std::string outDir = args.value("out", "traces");
    // New recordings default to the columnar format; --format=v1
    // keeps writing the flat format for old readers.
    const uint32_t version =
        traceFormatFlag(args, "record", kTraceFormatV2);
    if (version == 0)
        return 2;

    const auto &reg = workloads::BenchmarkRegistry::instance();
    std::vector<const workloads::BenchmarkEntry *> entries;
    if (target == "all") {
        for (const auto &e : reg.all())
            entries.push_back(&e);
    } else {
        entries = reg.bySuite(target);
        if (entries.empty()) {
            const auto *e = reg.find(target);
            if (!e) {
                std::fprintf(stderr,
                             "unknown benchmark or suite '%s' (try "
                             "'mica list')\n",
                             target.c_str());
                return 1;
            }
            entries.push_back(e);
        }
    }

    // Each benchmark records into its own file, so the fan-out is as
    // embarrassingly parallel as the profiling sweep.
    std::vector<uint64_t> records(entries.size(), 0);
    auto pool = methodologyPool(cfg);
    pipeline::parallelBlocks(pool.get(), entries.size(), [&](size_t i) {
        records[i] =
            recordOne(*entries[i],
                      outDir + "/" + traceFileName(entries[i]->info),
                      cfg.maxInsts, version);
    });

    report::TextTable t({"benchmark", "records", "file"},
                        {report::Align::Left, report::Align::Right,
                         report::Align::Left});
    uint64_t total = 0;
    for (size_t i = 0; i < entries.size(); ++i) {
        t.addRow({entries[i]->info.fullName(),
                  std::to_string(records[i]),
                  traceFileName(entries[i]->info)});
        total += records[i];
    }
    std::printf("%s\nrecorded %zu traces (%llu records) into %s\n",
                t.render().c_str(), entries.size(),
                static_cast<unsigned long long>(total), outDir.c_str());
    return 0;
}

int
cmdTraceConvert(const util::CliArgs &args)
{
    if (args.positionals.size() < 4)
        return usage();
    const std::string src = args.positionals[2];
    const std::string dst = args.positionals[3];
    // Without --format, convert to the *other* format: v1 input
    // upgrades to v2, v2 input downgrades to v1.
    uint32_t version = traceFormatFlag(args, "convert", 0);
    if (args.has("format") && version == 0)
        return 2;
    if (version == 0) {
        const TraceFileInfo fi = probeTraceFile(src);
        version = fi.version == kTraceFormatV1 ? kTraceFormatV2
                                               : kTraceFormatV1;
    }
    const TraceConvertStats st = convertTraceFile(src, dst, version);
    const double ratio =
        st.dstBytes > 0
            ? static_cast<double>(st.srcBytes) /
                  static_cast<double>(st.dstBytes)
            : 0.0;
    std::printf("converted %s (v%u, %llu bytes) -> %s (v%u, %llu "
                "bytes): %llu records verified identical, %.2fx\n",
                src.c_str(), st.srcVersion,
                static_cast<unsigned long long>(st.srcBytes),
                dst.c_str(), st.dstVersion,
                static_cast<unsigned long long>(st.dstBytes),
                static_cast<unsigned long long>(st.records), ratio);
    return 0;
}

int
cmdTraceLs(const util::CliArgs &args)
{
    const std::string dir =
        args.positionals.size() >= 3 ? args.positionals[2] : "traces";
    namespace fs = std::filesystem;
    std::error_code ec;
    // Error classes matter to callers: an absent directory (exit 4)
    // is a different situation from an unreadable one (exit 5) or a
    // path that is a file (exit 1).
    const fs::file_status st = fs::status(dir, ec);
    if (!fs::exists(st)) {
        std::fprintf(stderr,
                     "mica trace ls: %s: No such file or directory\n",
                     dir.c_str());
        return kExitNoEnt;
    }
    if (!fs::is_directory(st)) {
        std::fprintf(stderr, "mica trace ls: '%s' is not a directory\n",
                     dir.c_str());
        return 1;
    }
    std::vector<fs::path> files;
    try {
        for (const auto &de : fs::directory_iterator(dir)) {
            if (de.is_regular_file())
                files.push_back(de.path());
        }
    } catch (const fs::filesystem_error &e) {
        std::fprintf(stderr, "mica trace ls: %s: %s\n", dir.c_str(),
                     e.code().message().c_str());
        return exitCodeFor(e.code().value());
    }
    std::sort(files.begin(), files.end());

    report::TextTable t({"file", "format", "records", "bytes", "ratio",
                         "status"},
                        {report::Align::Left, report::Align::Left,
                         report::Align::Right, report::Align::Right,
                         report::Align::Right, report::Align::Left});
    size_t listed = 0, rejected = 0;
    for (const auto &p : files) {
        const std::string ext = p.extension().string();
        const bool binary = ext == ".trace";
        if (!binary && ext != ".csv" && ext != ".txt")
            continue;   // .tmp leftovers, READMEs, ...
        const uint64_t bytes = fs::file_size(p, ec);
        std::string recs = "-", status = "ok", format = "text";
        std::string ratio = "-";
        // The status column separates the error classes: "corrupt"
        // means the file was readable but its contents failed
        // validation; "io-error" means the bytes could not be read
        // at all (the message on stderr names the errno — for a v2
        // file with a damaged column stream, the failing column).
        try {
            if (binary) {
                const TraceFileInfo fi = probeTraceFile(p.string());
                recs = std::to_string(fi.recordCount);
                format = "v" + std::to_string(fi.version);
                // Compression vs the flat in-memory records the v1
                // format stores verbatim.
                if (fi.version >= kTraceFormatV2 && !ec && bytes > 0) {
                    char buf[32];
                    std::snprintf(
                        buf, sizeof(buf), "%.2fx",
                        static_cast<double>(fi.recordCount *
                                            sizeof(InstRecord)) /
                            static_cast<double>(bytes));
                    ratio = buf;
                }
            } else {
                recs = std::to_string(readTextTrace(p.string()).size());
            }
        } catch (const TraceFileError &e) {
            status = e.code() == 0 ? "corrupt" : "io-error";
            format = binary ? "?" : "text";
            ++rejected;
            std::fprintf(stderr, "%s\n", e.what());
        }
        t.addRow({p.filename().string(), format, recs,
                  std::to_string(ec ? 0 : bytes), ratio, status});
        ++listed;
    }
    std::printf("%s\n%zu trace files in %s", t.render().c_str(), listed,
                dir.c_str());
    if (rejected)
        std::printf(" (%zu rejected — see stderr)", rejected);
    std::printf("\n");
    return rejected ? 1 : 0;
}

// ----------------------------------------------------------------------
// corpus verbs: manifest a directory tree of traces into shards, list
// the manifest, and profile it shard-at-a-time with durable resume.
// ----------------------------------------------------------------------

/** Render one manifest as the shared shard summary table. */
void
printCorpusSummary(const workloads::CorpusManifest &m)
{
    report::TextTable t({"shard", "traces", "records", "bytes",
                         "digest"},
                        {report::Align::Left, report::Align::Right,
                         report::Align::Right, report::Align::Right,
                         report::Align::Left});
    for (const auto &s : m.shards) {
        char digest[24];
        std::snprintf(digest, sizeof(digest), "0x%016llx",
                      static_cast<unsigned long long>(s.digest()));
        t.addRow({s.name, std::to_string(s.traces.size()),
                  std::to_string(s.records()),
                  std::to_string(s.bytes()), digest});
    }
    std::printf("%s\n%zu shards, %zu traces, %llu records in %s\n",
                t.render().c_str(), m.shards.size(), m.traceCount(),
                static_cast<unsigned long long>(m.records()),
                m.root.c_str());
}

int
cmdCorpusInit(const util::CliArgs &args)
{
    if (args.positionals.size() < 3)
        return usage();
    if (rejectBadInt(args, "corpus init", "shard-size"))
        return 2;
    const long long shardSize = args.intValue("shard-size", 16);
    if (shardSize <= 0) {
        std::fprintf(stderr,
                     "mica corpus init: --shard-size must be >= 1\n");
        return 2;
    }
    const workloads::CorpusManifest m = workloads::scanCorpus(
        args.positionals[2], static_cast<size_t>(shardSize));
    workloads::saveCorpus(m);
    printCorpusSummary(m);
    return 0;
}

int
cmdCorpusLs(const util::CliArgs &args)
{
    if (args.positionals.size() < 3)
        return usage();
    printCorpusSummary(workloads::loadCorpus(args.positionals[2]));
    return 0;
}

/**
 * Profile every shard of a corpus into per-shard profile stores under
 * --out, one shard at a time (peak memory is one shard's working
 * set). Each finished shard gets a durable done marker, so re-running
 * after a crash recomputes only the unfinished shards; --rerun
 * ignores the markers. A shard whose collection throws is quarantined
 * into the summary and the run continues.
 */
int
cmdCorpusProfile(const util::CliArgs &args,
                 const experiments::DatasetConfig &cfg)
{
    if (args.positionals.size() < 3)
        return usage();
    const workloads::CorpusManifest m =
        workloads::loadCorpus(args.positionals[2]);

    pipeline::CorpusRunOptions opt;
    opt.outDir = args.value("out", "corpus-out");
    opt.rerunAll = args.has("rerun");

    const auto outcomes = pipeline::runCorpusShards(
        m, opt,
        [&](size_t i, const std::string &shardDir)
            -> pipeline::ShardResult {
            // Each shard is one dataset collection over exactly its
            // files, cached in the shard's own store directory and
            // keyed by the shard label + content digest.
            experiments::DatasetConfig shardCfg = cfg;
            shardCfg.traceDir.clear();
            shardCfg.traceFiles = m.shardFiles(i);
            shardCfg.traceLabel = "corpus:" + m.shards[i].name;
            shardCfg.cacheDir = shardDir;
            const auto ds = collectReported(shardCfg);
            return {ds.benchmarks.size(), ds.failures.size()};
        });

    report::TextTable t({"shard", "status", "benchmarks", "failures",
                         "detail"},
                        {report::Align::Left, report::Align::Left,
                         report::Align::Right, report::Align::Right,
                         report::Align::Left});
    size_t done = 0, skipped = 0, failed = 0;
    for (const auto &o : outcomes) {
        const char *status = "done";
        if (o.status == pipeline::ShardOutcome::Status::Skipped) {
            status = "skipped";
            ++skipped;
        } else if (o.status == pipeline::ShardOutcome::Status::Failed) {
            status = "FAILED";
            ++failed;
        } else {
            ++done;
        }
        t.addRow({o.shard, status, std::to_string(o.benchmarks),
                  std::to_string(o.failures), o.error});
    }
    std::printf("%s\n%zu shards: %zu profiled, %zu resumed (already "
                "done), %zu failed -> %s\n",
                t.render().c_str(), outcomes.size(), done, skipped,
                failed, opt.outDir.c_str());
    return failed == 0 ? 0 : kExitPartial;
}

int
cmdCorpus(const util::CliArgs &args,
          const experiments::DatasetConfig &cfg)
{
    const std::string sub =
        args.positionals.size() >= 2 ? args.positionals[1] : "";
    if (sub == "init")
        return cmdCorpusInit(args);
    if (sub == "ls")
        return cmdCorpusLs(args);
    if (sub == "profile")
        return cmdCorpusProfile(args, cfg);
    return usage();
}

// ----------------------------------------------------------------------
// faults verbs: the fault-injection registry and the crash matrix.
// ----------------------------------------------------------------------

int
cmdFaultsLs()
{
    report::TextTable t({"failpoint", "kind", "fired"},
                        {report::Align::Left, report::Align::Left,
                         report::Align::Right});
    const auto &known = util::knownFailpoints();
    for (const auto &fp : known) {
        t.addRow({fp.name, fp.writeSite ? "write" : "read",
                  std::to_string(util::failpointFireCount(fp.name))});
    }
    std::printf("%s\n%zu failpoints", t.render().c_str(), known.size());
#if !MICA_FAILPOINTS
    std::printf(" (fault injection compiled out: MICA_FAILPOINTS=0)");
#endif
    std::printf("\n");
    return 0;
}

int
cmdFaultsCrashMatrix(const util::CliArgs &args)
{
    if (!experiments::crashMatrixSupported()) {
        std::fprintf(stderr,
                     "mica faults crash-matrix: fault injection "
                     "compiled out (MICA_FAILPOINTS=0)\n");
        return 1;
    }
    namespace fs = std::filesystem;
    std::string dir = args.value("dir");
    const bool scratch = dir.empty();
    if (scratch) {
        std::error_code ec;
        dir = (fs::temp_directory_path(ec) /
               ("mica-crash-matrix-" + std::to_string(::getpid())))
                  .string();
    }

    const auto rows = experiments::runCrashMatrix(dir);
    report::TextTable t({"site", "scenario", "crash", "survivor",
                         "recovery", "detail"},
                        {report::Align::Left, report::Align::Left,
                         report::Align::Left, report::Align::Left,
                         report::Align::Left, report::Align::Left});
    size_t ok = 0;
    for (const auto &r : rows) {
        t.addRow({r.site, r.scenario, r.crashed ? "yes" : "NO",
                  r.oldValid       ? "old-valid"
                      : r.newValid ? "new-valid"
                                   : "INVALID",
                  r.recovered ? "ok" : "FAILED", r.detail});
        if (r.ok())
            ++ok;
    }
    if (scratch) {
        std::error_code ec;
        fs::remove_all(dir, ec);
    }
    std::printf("%s\ncrash matrix: %zu/%zu cells OK\n",
                t.render().c_str(), ok, rows.size());
    return (!rows.empty() && ok == rows.size()) ? 0 : 1;
}

// ----------------------------------------------------------------------
// obs verb: exercise the telemetry subsystem end to end and verify the
// folded numbers, so a broken build is caught by one cheap command
// instead of a silently wrong metrics file.
// ----------------------------------------------------------------------

int
cmdObsDemo()
{
#if !MICA_OBS
    std::printf("obs: telemetry compiled out (MICA_OBS=0)\n");
    return 0;
#else
    constexpr size_t kBlocks = 64;
    constexpr size_t kAdds = 10000;
    {
        // Nested spans across a full pool fan-out: the exact shape the
        // instrumented pipeline produces.
        obs::ObsSpan sp("obs.demo");
        pipeline::ThreadPool pool(0);
        pipeline::parallelBlocks(&pool, kBlocks, [&](size_t b) {
            obs::ObsSpan inner("obs.demo.block");
            inner.arg("block", static_cast<uint64_t>(b));
            static obs::Counter count("obs.demo.count");
            static obs::Histogram value("obs.demo.value_us");
            for (size_t i = 0; i < kAdds; ++i)
                count.add(1);
            value.record(b);
        });
    }

    bool ok = true;
    const auto snap = obs::snapshotMetrics();
    const auto cit = snap.metrics.find("obs.demo.count");
    const int64_t want = static_cast<int64_t>(kBlocks * kAdds);
    if (cit == snap.metrics.end() || cit->second.value != want) {
        std::fprintf(stderr,
                     "obs demo: counter folded to %lld, expected %lld\n",
                     static_cast<long long>(
                         cit == snap.metrics.end() ? -1
                                                   : cit->second.value),
                     static_cast<long long>(want));
        ok = false;
    }
    const auto hit = snap.metrics.find("obs.demo.value_us");
    if (hit == snap.metrics.end() ||
        hit->second.hist.count != static_cast<int64_t>(kBlocks)) {
        std::fprintf(stderr, "obs demo: histogram count wrong\n");
        ok = false;
    }
    uint64_t blockSpans = 0;
    for (const auto &s : obs::spanStats()) {
        if (s.name == "obs.demo.block")
            blockSpans = s.count;
    }
    if (blockSpans != kBlocks) {
        std::fprintf(stderr,
                     "obs demo: %llu obs.demo.block spans, expected "
                     "%zu\n",
                     static_cast<unsigned long long>(blockSpans),
                     kBlocks);
        ok = false;
    }
    std::fprintf(stderr, "%s", obs::summaryText().c_str());
    std::printf("obs self-test: %s\n", ok ? "OK" : "FAIL");
    return ok ? 0 : 1;
#endif
}

// ----------------------------------------------------------------------
// Verb dispatch table. One entry per top-level verb: the handler, the
// usage lines shown in the top-level verb list, and the flag notes
// shown by `mica <verb> --help`. usage(), verbHelp(), and main()'s
// dispatch all render from this table — the single source of truth
// for what verbs exist and how they are invoked.
// ----------------------------------------------------------------------

int
cmdListVerb(const util::CliArgs &args, const experiments::DatasetConfig &)
{
    return cmdList(args);
}

int
cmdProfileMica(const util::CliArgs &args,
               const experiments::DatasetConfig &cfg)
{
    return cmdProfile(args, cfg, false);
}

int
cmdProfileHpc(const util::CliArgs &args,
              const experiments::DatasetConfig &cfg)
{
    return cmdProfile(args, cfg, true);
}

int
cmdSelectVerb(const util::CliArgs &,
              const experiments::DatasetConfig &cfg)
{
    return cmdSelect(cfg);
}

int
cmdTrace(const util::CliArgs &args, const experiments::DatasetConfig &cfg)
{
    const std::string sub =
        args.positionals.size() >= 2 ? args.positionals[1] : "";
    if (sub == "record")
        return cmdTraceRecord(args, cfg);
    if (sub == "convert")
        return cmdTraceConvert(args);
    if (sub == "ls")
        return cmdTraceLs(args);
    return usage();
}

int
cmdFaults(const util::CliArgs &args, const experiments::DatasetConfig &)
{
    const std::string sub =
        args.positionals.size() >= 2 ? args.positionals[1] : "";
    if (sub == "ls")
        return cmdFaultsLs();
    if (sub == "crash-matrix")
        return cmdFaultsCrashMatrix(args);
    return usage();
}

int
cmdObs(const util::CliArgs &args, const experiments::DatasetConfig &)
{
    const std::string sub =
        args.positionals.size() >= 2 ? args.positionals[1] : "";
    if (sub == "demo")
        return cmdObsDemo();
    return usage();
}

// ----------------------------------------------------------------------
// perf verbs: noise-aware regression gating over mica-perf-profile/2
// documents (written by bench/perf_analyzers --json=...).
// ----------------------------------------------------------------------

/** One dispersion summary pulled out of a profile document. */
struct PerfMetric
{
    double p50 = 0.0;
    double min = 0.0;
    double max = 0.0;
    int64_t n = 0;
};

/** Per-family degradation thresholds (fractions of the base value). */
struct PerfTolerance
{
    double noise;   ///< drops up to this are measurement noise: pass
    double fail;    ///< drops past this are regressions: exit 1
};

/**
 * Loose enough for shared CI runners: "degraded" (exit 3) carries the
 * warning, and only unambiguous cliffs — an engine falling back to
 * per-record dispatch, a family erroring out to zero — hard-fail.
 * Socket-bound and telemetry numbers get the widest band.
 */
PerfTolerance
perfToleranceFor(const std::string &family)
{
    if (family == "engine")
        return {0.10, 0.40};
    if (family == "serve" || family == "obs")
        return {0.15, 0.60};
    if (family == "methodology" || family == "trace_replay" ||
        family == "trace_v2" || family == "index")
        return {0.12, 0.50};
    return {0.10, 0.45};   // analyzers and anything unrecognized
}

/** Metric paths ending in _ns/_us time a cost: smaller is better. */
bool
perfLowerIsBetter(const std::string &path)
{
    const auto endsWith = [&](const char *suffix) {
        const size_t n = std::strlen(suffix);
        return path.size() >= n &&
               path.compare(path.size() - n, n, suffix) == 0;
    };
    return endsWith("_ns") || endsWith("_us");
}

/**
 * Flatten every summary object ({p50, ..., n}) under @p node into
 * dotted paths ("serve.daemon_requests_per_sec.conns8"). Bare numbers
 * (derived speedup ratios, host facts) are not gated.
 */
void
collectPerfMetrics(const service::JsonValue &node,
                   const std::string &path,
                   std::map<std::string, PerfMetric> *out)
{
    if (!node.isObject())
        return;
    const service::JsonValue *p50 = node.find("p50");
    const service::JsonValue *n = node.find("n");
    if (p50 != nullptr && p50->isNumber() && n != nullptr &&
        n->isNumber()) {
        PerfMetric m;
        m.p50 = p50->asDouble();
        const service::JsonValue *mn = node.find("min");
        const service::JsonValue *mx = node.find("max");
        m.min = mn != nullptr && mn->isNumber() ? mn->asDouble() : m.p50;
        m.max = mx != nullptr && mx->isNumber() ? mx->asDouble() : m.p50;
        m.n = n->asCount(0);
        (*out)[path] = m;
        return;
    }
    for (const auto &kv : node.members())
        collectPerfMetrics(kv.second,
                           path.empty() ? kv.first
                                        : path + "." + kv.first,
                           out);
}

/** Load a profile, check its schema, flatten families to metrics. */
bool
loadPerfProfile(const std::string &path,
                std::map<std::string, PerfMetric> *out,
                std::string *err)
{
    const std::string text = util::readFileBytes(path, "perf.compare");
    service::JsonValue doc;
    if (!service::parseJson(text, &doc, err) || !doc.isObject()) {
        if (err->empty())
            *err = "not a JSON object";
        return false;
    }
    const service::JsonValue *schema = doc.find("schema");
    if (schema == nullptr || !schema->isString() ||
        schema->asString() != "mica-perf-profile/2") {
        *err = "schema is not mica-perf-profile/2 (regenerate with "
               "perf_analyzers --json=...)";
        return false;
    }
    const service::JsonValue *fams = doc.find("families");
    if (fams == nullptr || !fams->isObject()) {
        *err = "missing \"families\" object";
        return false;
    }
    collectPerfMetrics(*fams, "", out);
    if (out->empty()) {
        *err = "no {p50, ..., n} summaries under \"families\"";
        return false;
    }
    return true;
}

int
cmdPerfCompare(const util::CliArgs &args)
{
    if (args.positionals.size() < 4)
        return usage();
    const std::string basePath = args.positionals[2];
    const std::string newPath = args.positionals[3];
    const bool allowMissing = args.has("allow-missing");

    std::map<std::string, PerfMetric> base, fresh;
    std::string err;
    if (!loadPerfProfile(basePath, &base, &err)) {
        std::fprintf(stderr, "mica perf compare: %s: %s\n",
                     basePath.c_str(), err.c_str());
        return 2;
    }
    if (!loadPerfProfile(newPath, &fresh, &err)) {
        std::fprintf(stderr, "mica perf compare: %s: %s\n",
                     newPath.c_str(), err.c_str());
        return 2;
    }

    size_t okCount = 0, degradedCount = 0, regressedCount = 0;
    std::vector<std::string> missing;
    std::string worstPath;
    double worstDrop = 0.0;
    service::JsonValue findings = service::JsonValue::array();

    std::printf("%-54s %13s %13s %8s  %s\n", "metric", "base", "new",
                "delta", "status");
    for (const auto &kv : base) {
        const std::string &path = kv.first;
        const PerfMetric &b = kv.second;
        const auto it = fresh.find(path);
        if (it == fresh.end()) {
            missing.push_back(path);
            continue;
        }
        const PerfMetric &f = it->second;
        const std::string family = path.substr(0, path.find('.'));
        const bool lower = perfLowerIsBetter(path);
        // Min-based fallback: with too few repetitions the median is
        // itself a noisy draw, so low-n metrics compare best observed
        // values instead (max of a rate, min of a cost).
        const bool lowN = b.n < 4 || f.n < 4;
        const double bv = lowN ? (lower ? b.min : b.max) : b.p50;
        const double fv = lowN ? (lower ? f.min : f.max) : f.p50;
        const char *basis = lowN ? "best" : "p50";
        const char *status = "ok";
        double drop = 0.0;
        if (bv <= 0.0 && fv <= 0.0) {
            ++okCount;   // both zero: the family failed identically
        } else if (bv <= 0.0) {
            ++okCount;   // baseline had nothing; new data can only help
        } else {
            drop = lower ? (fv - bv) / bv : (bv - fv) / bv;
            const PerfTolerance tol = perfToleranceFor(family);
            if (drop <= tol.noise) {
                ++okCount;
            } else if (drop <= tol.fail) {
                status = "degraded";
                ++degradedCount;
            } else {
                status = "regression";
                ++regressedCount;
            }
            if (drop > worstDrop) {
                worstDrop = drop;
                worstPath = path;
            }
        }
        const double deltaPct = bv > 0.0 ? (fv - bv) / bv * 100.0 : 0.0;
        std::printf("%-54s %13.6g %13.6g %+7.1f%%  %s\n", path.c_str(),
                    bv, fv, deltaPct, status);

        service::JsonValue fo = service::JsonValue::object();
        fo.set("metric", service::JsonValue::str(path));
        fo.set("family", service::JsonValue::str(family));
        fo.set("base", service::JsonValue::number(bv));
        fo.set("new", service::JsonValue::number(fv));
        fo.set("basis", service::JsonValue::str(basis));
        fo.set("drop", service::JsonValue::number(drop));
        fo.set("status", service::JsonValue::str(status));
        findings.push(std::move(fo));
    }
    for (const auto &path : missing)
        std::printf("%-54s %13s %13s %8s  %s\n", path.c_str(), "-", "-",
                    "-", allowMissing ? "missing" : "MISSING");

    const bool missingFails = !missing.empty() && !allowMissing;
    const char *verdict = regressedCount > 0 || missingFails
        ? "regression"
        : degradedCount > 0 ? "degraded"
                            : "pass";
    const int rc = regressedCount > 0 || missingFails
        ? 1
        : degradedCount > 0 ? kExitPartial
                            : 0;
    std::printf("perf compare: %s (%zu ok, %zu degraded, "
                "%zu regressed, %zu missing",
                verdict, okCount, degradedCount, regressedCount,
                missing.size());
    if (!worstPath.empty() && worstDrop > 0.0)
        std::printf("; worst %s -%.1f%%", worstPath.c_str(),
                    worstDrop * 100.0);
    std::printf(")\n");

    const std::string verdictPath = args.value("verdict");
    if (!verdictPath.empty()) {
        service::JsonValue doc = service::JsonValue::object();
        doc.set("schema",
                service::JsonValue::str("mica-perf-verdict/1"));
        doc.set("base", service::JsonValue::str(basePath));
        doc.set("new", service::JsonValue::str(newPath));
        doc.set("verdict", service::JsonValue::str(verdict));
        doc.set("exit_code",
                service::JsonValue::number(int64_t(rc)));
        doc.set("ok", service::JsonValue::number(int64_t(okCount)));
        doc.set("degraded",
                service::JsonValue::number(int64_t(degradedCount)));
        doc.set("regressed",
                service::JsonValue::number(int64_t(regressedCount)));
        service::JsonValue miss = service::JsonValue::array();
        for (const auto &path : missing)
            miss.push(service::JsonValue::str(path));
        doc.set("missing", std::move(miss));
        doc.set("findings", std::move(findings));
        util::atomicWriteFile(verdictPath, doc.dump() + "\n",
                              "perf.verdict");
    }
    return rc;
}

int
cmdPerf(const util::CliArgs &args, const experiments::DatasetConfig &)
{
    const std::string sub =
        args.positionals.size() >= 2 ? args.positionals[1] : "";
    if (sub == "compare")
        return cmdPerfCompare(args);
    return usage();
}

int cmdCapabilities(const util::CliArgs &,
                    const experiments::DatasetConfig &);

int cmdHelp(const util::CliArgs &args, const experiments::DatasetConfig &);

struct VerbDef
{
    const char *name;

    /**
     * Lines for the top-level verb list, already formatted
     * ("  invocation            what it does\n"); multi-form verbs
     * (index, trace) carry one line per form.
     */
    const char *usageLines;

    /** Verb-specific flags, one per line, for `mica <verb> --help`. */
    const char *flagHelp;

    int (*run)(const util::CliArgs &, const experiments::DatasetConfig &);
};

constexpr VerbDef kVerbs[] = {
    {"list", "  list [suite]              list registered benchmarks\n",
     "", cmdListVerb},
    {"profile",
     "  profile <name>|all        print MICA profiles\n",
     "  --csv=FILE     dump `all` as CSV instead of a table\n",
     cmdProfileMica},
    {"hpc",
     "  hpc <name>|all            print hardware-counter profiles\n",
     "  --csv=FILE     dump `all` as CSV instead of a table\n",
     cmdProfileHpc},
    {"distance",
     "  distance <nameA> <nameB>  distances in both spaces\n", "",
     cmdDistance},
    {"select",
     "  select                    GA key-characteristic selection\n",
     "", cmdSelectVerb},
    {"cluster",
     "  cluster                   cluster benchmarks (key space)\n",
     "  --maxk=N       K sweep ceiling (default 70)\n", cmdCluster},
    {"subset",
     "  subset                    cluster-medoid representatives\n",
     "  --maxk=N       K sweep ceiling (default 70)\n", cmdSubset},
    {"index",
     "  index build               build + persist the similarity index\n"
     "  index query <bench>|all   kNN / radius queries from the index\n"
     "  index redundant           most redundant benchmark pairs\n",
     "  --space=mica|hpc|key  fingerprint space (build; queries adopt\n"
     "                 the snapshot's space unless told otherwise)\n"
     "  --pca=K        project onto K principal components\n"
     "  --k=N          neighbors per query (query)\n"
     "  --radius=R     radius query instead of kNN (query)\n"
     "  --top=N        pairs to report (redundant)\n"
     "  --brute        brute-force reference path (no VP-tree)\n",
     cmdIndex},
    {"serve",
     "  serve [--listen=ADDR]     similarity-query daemon (JSON lines)\n",
     "  --listen=ADDR  unix:PATH or tcp:HOST:PORT (default "
     "unix:mica.sock)\n"
     "  --space=mica|hpc|key / --pca=K   fingerprint space knobs\n"
     "  --max-conns=N  concurrent client cap (default 256)\n"
     "  --drain-ms=N   graceful-shutdown drain budget (default 5000)\n"
     "  --metrics-interval=SEC  rewrite --metrics=FILE every SEC\n"
     "                 seconds while serving (live introspection)\n"
     "  SIGINT/SIGTERM drain in-flight queries, flush telemetry "
     "sinks,\n"
     "  and exit 0.\n",
     cmdServe},
    {"query",
     "  query <REQUEST>|-         one-shot protocol query (local or\n"
     "                            --connect=ADDR against a daemon)\n",
     "  --connect=ADDR ask a running daemon instead of answering\n"
     "                 locally; replies are byte-identical either way\n"
     "  --space=mica|hpc|key / --pca=K   fingerprint space (local)\n"
     "  REQUEST is one JSON object, e.g. "
     "'{\"op\":\"knn\",\"bench\":\"B\",\"k\":5}';\n"
     "  '-' streams request lines from stdin.\n",
     cmdQuery},
    {"serve-bench",
     "  serve-bench --connect=ADDR  load-generate against a daemon\n",
     "  --conns=N      concurrent connections (default 4)\n"
     "  --requests=N   requests per connection (default 100)\n"
     "  --bench=NAME   add kNN of NAME to the request mix\n",
     cmdServeBench},
    {"trace",
     "  trace record <bench>|<suite>|all  record traces to --out=DIR\n"
     "  trace convert <src> <dst> rewrite a trace in the other format\n"
     "  trace ls [DIR]            list recorded trace files\n",
     "  --out=DIR      destination directory (record; default "
     "traces)\n"
     "  --format=v1|v2 on-disk format (record defaults to v2;\n"
     "                 convert defaults to the other format);\n"
     "                 conversion is verified record-identical\n",
     cmdTrace},
    {"corpus",
     "  corpus init <dir>         shard a trace tree into corpus.json\n"
     "  corpus ls <dir>           list a corpus manifest\n"
     "  corpus profile <dir>      profile every shard, resumable\n",
     "  --shard-size=N traces per shard (init; default 16)\n"
     "  --out=DIR      per-shard stores + done markers (profile;\n"
     "                 default corpus-out)\n"
     "  --rerun        ignore done markers and recompute (profile)\n"
     "  profile runs one shard at a time (bounded memory), writes a\n"
     "  durable marker per finished shard, and on re-run recomputes\n"
     "  only shards without a matching marker.\n",
     cmdCorpus},
    {"faults",
     "  faults ls                 list fault-injection points\n"
     "  faults crash-matrix       crash-consistency check of every\n"
     "                            durable write path\n",
     "  --dir=DIR      scratch directory (crash-matrix)\n", cmdFaults},
    {"obs",
     "  obs demo                  telemetry self-test\n", "", cmdObs},
    {"perf",
     "  perf compare <base> <new> gate a perf profile against a "
     "baseline\n",
     "  --verdict=FILE write the machine-readable verdict JSON\n"
     "  --allow-missing  metrics absent from <new> warn instead of "
     "fail\n"
     "  exit 0 within noise, 3 degraded, 1 regression/missing\n",
     cmdPerf},
    {"capabilities",
     "  capabilities              machine-readable feature inventory\n",
     "", cmdCapabilities},
    {"help",
     "  help [verb]               this list, or one verb's flags\n", "",
     cmdHelp},
};

const VerbDef *
findVerb(const std::string &name)
{
    for (const auto &v : kVerbs) {
        if (name == v.name)
            return &v;
    }
    return nullptr;
}

int
usage()
{
    std::printf("usage: mica <command> [args] [--budget=N] "
                "[--cache=DIR] [--jobs=N]\n");
    for (const auto &v : kVerbs)
        std::printf("%s", v.usageLines);
    std::printf(
        "dataset verbs also take --suites=A,B --traces=DIR "
        "--reader=mmap|stream --max-failures=N\n"
        "every verb takes --metrics=FILE --trace-out=FILE "
        "--obs-summary --failpoints=SPEC\n"
        "`mica <verb> --help` lists one verb's flags\n"
        "exit codes: 0 ok, 1 error, 2 usage, 3 partial (quarantined "
        "benchmarks),\n"
        "            4 missing file, 5 permission denied, 97 simulated "
        "crash\n");
    return 2;
}

int
verbHelp(const std::string &verb)
{
    const VerbDef *v = findVerb(verb);
    if (!v)
        return usage();
    std::printf("usage:\n%s", v->usageLines);
    if (v->flagHelp[0] != '\0')
        std::printf("flags:\n%s", v->flagHelp);
    std::printf("global flags: --budget=N --cache=DIR --jobs=N "
                "--metrics=FILE --trace-out=FILE --obs-summary "
                "--failpoints=SPEC\n");
    return 0;
}

int
cmdHelp(const util::CliArgs &args, const experiments::DatasetConfig &)
{
    if (args.positionals.size() >= 2)
        return verbHelp(args.positionals[1]);
    usage();
    return 0;
}

/**
 * One JSON object a harness can interrogate instead of parsing help
 * text: which verbs exist, which analyzers/spaces/bench families this
 * build knows, and which compile-time legs it was built with.
 */
int
cmdCapabilities(const util::CliArgs &, const experiments::DatasetConfig &)
{
    service::JsonValue doc = service::JsonValue::object();
    doc.set("schema", service::JsonValue::str("mica-capabilities/1"));
    service::JsonValue verbs = service::JsonValue::array();
    for (const auto &v : kVerbs)
        verbs.push(service::JsonValue::str(v.name));
    doc.set("verbs", std::move(verbs));
    service::JsonValue analyzers = service::JsonValue::array();
    for (const char *a : {"inst_mix", "ilp", "reg_traffic",
                          "working_set", "strides", "ppm"})
        analyzers.push(service::JsonValue::str(a));
    doc.set("analyzers", std::move(analyzers));
    service::JsonValue spaces = service::JsonValue::array();
    for (const char *s : {"mica", "hpc", "key"})
        spaces.push(service::JsonValue::str(s));
    doc.set("spaces", std::move(spaces));
    service::JsonValue fams = service::JsonValue::array();
    for (const char *f : {"analyzers", "engine", "methodology",
                          "trace_replay", "trace_v2", "index", "serve",
                          "obs"})
        fams.push(service::JsonValue::str(f));
    doc.set("perf_families", std::move(fams));
    service::JsonValue formats = service::JsonValue::array();
    for (uint32_t v = kTraceFormatV1; v <= kTraceFormatLatest; ++v)
        formats.push(
            service::JsonValue::number(static_cast<uint64_t>(v)));
    doc.set("trace_formats", std::move(formats));
    doc.set("perf_profile_schema",
            service::JsonValue::str("mica-perf-profile/2"));
    service::JsonValue compiled = service::JsonValue::object();
    compiled.set("obs", service::JsonValue::boolean(MICA_OBS != 0));
    compiled.set("failpoints",
                 service::JsonValue::boolean(MICA_FAILPOINTS != 0));
    doc.set("compiled", std::move(compiled));
    std::printf("%s\n", doc.dump().c_str());
    return 0;
}

/**
 * Exit epilogue shared by every verb: flush the requested telemetry
 * sinks. A sink that cannot be written turns a successful run into a
 * failure — the caller asked for the file, silently missing it would
 * poison whatever consumes it (CI asserts on these).
 */
int
obsFinish(const util::CliArgs &args, int rc)
{
    const std::string metricsPath = args.value("metrics");
    if (!metricsPath.empty() && !obs::writeMetricsJson(metricsPath)) {
        std::fprintf(stderr, "mica: cannot write metrics file %s\n",
                     metricsPath.c_str());
        if (rc == 0)
            rc = 1;
    }
    const std::string tracePath = args.value("trace-out");
    if (!tracePath.empty() && !obs::writeTraceJson(tracePath)) {
        std::fprintf(stderr, "mica: cannot write trace file %s\n",
                     tracePath.c_str());
        if (rc == 0)
            rc = 1;
    }
    if (args.has("obs-summary"))
        std::fprintf(stderr, "%s", obs::summaryText().c_str());
    return rc;
}

/**
 * @return the flag allow-list for one verb (strict parsing; a
 * trailing '=' marks a value-taking flag — see util::parseCliArgs).
 */
std::vector<std::string>
knownFlags(const std::string &cmd, const std::string &sub)
{
    // The telemetry sinks and the fault-injection switch are global:
    // every verb can export metrics and run under armed failpoints.
    std::vector<std::string> known = {"budget=",  "cache=",
                                      "jobs=",    "quick",
                                      "metrics=", "trace-out=",
                                      "obs-summary", "failpoints="};
    // Verbs that collect a dataset can filter suites, swap the
    // interpreter for recorded traces, and cap quarantines.
    if (cmd == "profile" || cmd == "hpc" || cmd == "distance" ||
        cmd == "select" || cmd == "cluster" || cmd == "subset" ||
        cmd == "index" || cmd == "serve" || cmd == "query")
        known.insert(known.end(),
                     {"suites=", "traces=", "reader=", "max-failures="});
    if (cmd == "corpus") {
        if (sub == "init")
            known.push_back("shard-size=");
        if (sub == "profile")
            known.insert(known.end(), {"out=", "rerun", "suites=",
                                       "reader=", "max-failures="});
    }
    if (cmd == "serve")
        known.insert(known.end(),
                     {"listen=", "space=", "pca=", "max-conns=",
                      "drain-ms=", "metrics-interval="});
    if (cmd == "query")
        known.insert(known.end(), {"connect=", "space=", "pca="});
    if (cmd == "serve-bench")
        known.insert(known.end(),
                     {"connect=", "conns=", "requests=", "bench="});
    if (cmd == "faults" && sub == "crash-matrix")
        known.push_back("dir=");
    if (cmd == "perf" && sub == "compare")
        known.insert(known.end(), {"verdict=", "allow-missing"});
    if (cmd == "profile" || cmd == "hpc")
        known.push_back("csv=");
    if (cmd == "cluster" || cmd == "subset")
        known.push_back("maxk=");
    if (cmd == "trace" && sub == "record")
        known.insert(known.end(), {"out=", "format="});
    if (cmd == "trace" && sub == "convert")
        known.push_back("format=");
    if (cmd == "index") {
        known.insert(known.end(), {"space=", "pca="});
        if (sub == "query")
            known.insert(known.end(), {"k=", "radius=", "brute"});
        if (sub == "redundant")
            known.insert(known.end(), {"top=", "brute"});
    }
    return known;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    // --help anywhere after a verb prints that verb's page (rendered
    // from the dispatch table) before strict flag parsing would
    // reject it as unknown.
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0)
            return verbHelp(cmd);
    }
    // The sub-verb is the second positional (flags may come first, so
    // argv[2] is not necessarily it).
    std::string sub;
    for (int i = 2; i < argc; ++i) {
        if (argv[i][0] == '-' && argv[i][1] != '\0')
            continue;
        sub = argv[i];
        break;
    }
    const util::CliArgs args =
        util::parseCliArgs(argc, argv, knownFlags(cmd, sub));
    if (!args.ok()) {
        std::fprintf(stderr, "mica %s: %s\n", cmd.c_str(),
                     args.error.c_str());
        return 2;
    }
    // The shared numeric flags get the same strictness as the verb
    // ones: --budget=20k must not silently profile 20 instructions.
    for (const char *flag : {"budget", "jobs", "max-failures"}) {
        if (rejectBadInt(args, cmd.c_str(), flag))
            return 2;
    }
    // A typo'd reader must not silently mean "the mmap default".
    if (args.has("reader")) {
        const std::string r = args.value("reader");
        if (r != "mmap" && r != "stream") {
            std::fprintf(stderr, "mica %s: --reader must be mmap or "
                                 "stream (got '%s')\n",
                         cmd.c_str(), r.c_str());
            return 2;
        }
    }
    const auto cfg = experiments::configFromArgs(argc, argv);

    // Arm fault injection: the flag beats the environment, and a spec
    // that does not parse (or names an unknown site, or was given to
    // a binary with the hooks compiled out) rejects loudly — a typo
    // must not silently test nothing.
    std::string fpSpec = args.value("failpoints");
    if (fpSpec.empty()) {
        if (const char *env = std::getenv("MICA_FAILPOINTS"))
            fpSpec = env;
    }
    if (!fpSpec.empty()) {
        std::string fpErr;
        if (!util::armFailpoints(fpSpec, &fpErr)) {
            std::fprintf(stderr, "mica: --failpoints: %s\n",
                         fpErr.c_str());
            return 2;
        }
    }

    // Arm the span ring only when something will drain it; metric
    // counters are always live (their cost is a relaxed add).
    if (args.has("trace-out") || args.has("obs-summary") || cmd == "obs")
        obs::setTraceEnabled(true);

    // Trace-file problems (corrupt, truncated, layout-mismatched, or
    // unwritable files) surface as TraceFileError from any depth; they
    // must reject with the named reason, not crash the process. Every
    // exit path — including those failures — funnels through
    // obsFinish so the telemetry sinks always get written.
    const int rc = [&]() -> int {
        try {
            if (const VerbDef *v = findVerb(cmd))
                return v->run(args, cfg);
        } catch (const pipeline::SweepAborted &e) {
            // More quarantines than --max-failures allows: a hard
            // failure, not a partial result.
            std::fprintf(stderr, "mica %s: %s\n", cmd.c_str(), e.what());
            return 1;
        } catch (const TraceFileError &e) {
            // code() carries the errno class (0 = the file was
            // readable but corrupt), so scripts can branch on
            // missing-vs-unreadable-vs-corrupt.
            std::fprintf(stderr, "mica %s: %s\n", cmd.c_str(), e.what());
            return exitCodeFor(e.code());
        } catch (const util::IoError &e) {
            std::fprintf(stderr, "mica %s: %s\n", cmd.c_str(), e.what());
            return exitCodeFor(e.code());
        } catch (const std::exception &e) {
            std::fprintf(stderr, "mica %s: %s\n", cmd.c_str(), e.what());
            return 1;
        }
        return usage();
    }();
    // A verb that succeeded over an incomplete dataset reports the
    // distinct partial-failure code; real failures keep theirs.
    return obsFinish(args, rc == 0 && gQuarantined ? kExitPartial : rc);
}
