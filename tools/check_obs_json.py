#!/usr/bin/env python3
"""Validate the telemetry JSON a `mica` run exported.

CI runs a suite profile with --metrics/--trace-out and then asserts,
via this script, that the artifacts are what the observability layer
promises: the trace is Chrome-tracing JSON with complete spans from
every instrumented layer, and the metrics snapshot's store counters
account for every benchmark in the run.

Usage:
  check_obs_json.py trace FILE --expect-prefixes=pipeline.,engine.
  check_obs_json.py metrics FILE [--hits=N] [--computed=N] [--total=N]
                    [--counter NAME=N]... [--counter-min NAME=N]...
                    [--gauge NAME=N]... [--quantile NAME]...
  check_obs_json.py stats FILE

`--quantile NAME` asserts histogram NAME carries a well-formed
quantiles object: p50/p90/p99 present, ordered, and non-negative,
with a positive sample count. The `stats` mode validates one daemon
stats reply (the line `mica query '{"op":"stats"}' --connect=...`
prints): the server-only introspection block must be present with
consistent per-op counters and ordered latency quantiles.

`--total` asserts hits + computed == N without pinning the split;
`--hits`/`--computed` pin the individual counters (warm-cache runs).
`--counter NAME=N` pins any counter exactly and `--counter-min NAME=N`
bounds it from below — CI's fault smoke uses these to prove the
robustness counters (pipeline.quarantined, store.retry,
store.degraded_open, failpoint.fired) actually reached the snapshot
on a faulted run. A fault counter that never fired is absent from the
snapshot, so `--counter NAME=0` accepts both absent and literal zero.
Exit status is non-zero, with a message naming the failed check, on
any violation.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_obs_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def check_trace(path, prefixes):
    doc = load(path)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    names = set()
    for i, e in enumerate(events):
        for field in ("name", "ph", "pid", "tid", "ts", "dur"):
            if field not in e:
                fail(f"{path}: event {i} lacks '{field}': {e}")
        if e["ph"] != "X":
            fail(f"{path}: event {i} is not a complete span: {e}")
        names.add(e["name"])
    for prefix in prefixes:
        if not any(n.startswith(prefix) for n in names):
            fail(f"{path}: no span named {prefix}* "
                 f"(got: {', '.join(sorted(names))})")
    print(f"check_obs_json: OK: {path}: {len(events)} spans, "
          f"layers {sorted(prefixes)} all present")


def counter(doc, path, name):
    # Counters register on their first bump, so a counter that never
    # fired (e.g. store.* on a cacheless run) is absent, not zero.
    # Reading absent as 0 keeps --total/--hits/--counter assertions
    # exact without demanding the event occurred.
    return doc.get("counters", {}).get(name, 0)


def parse_counter_spec(spec):
    name, eq, value = spec.partition("=")
    if not eq or not name:
        fail(f"bad counter spec {spec!r} (want NAME=N)")
    try:
        return name, int(value)
    except ValueError:
        fail(f"bad counter spec {spec!r}: {value!r} is not an integer")


def check_metrics(path, args):
    doc = load(path)
    if doc.get("schema") != "mica-obs-metrics/1":
        fail(f"{path}: schema is {doc.get('schema')!r}")
    if not doc.get("compiled"):
        fail(f"{path}: telemetry not compiled in")
    hits = counter(doc, path, "store.profile.hit")
    computed = counter(doc, path, "store.profile.computed")
    if args.total is not None and hits + computed != args.total:
        fail(f"{path}: hit {hits} + computed {computed} != "
             f"expected total {args.total}")
    if args.hits is not None and hits != args.hits:
        fail(f"{path}: store.profile.hit is {hits}, expected {args.hits}")
    if args.computed is not None and computed != args.computed:
        fail(f"{path}: store.profile.computed is {computed}, "
             f"expected {args.computed}")
    checked = []
    for spec in args.counter:
        name, want = parse_counter_spec(spec)
        # Counters register on first bump, so "never fired" is absent.
        got = doc.get("counters", {}).get(name, 0)
        if got != want:
            fail(f"{path}: counter {name} is {got}, expected {want}")
        checked.append(f"{name}={got}")
    for spec in args.counter_min:
        name, want = parse_counter_spec(spec)
        got = doc.get("counters", {}).get(name, 0)
        if got < want:
            fail(f"{path}: counter {name} is {got}, expected >= {want}")
        checked.append(f"{name}={got}")
    for spec in args.gauge:
        name, want = parse_counter_spec(spec)
        # Gauges fold signed deltas; one that was never touched is
        # absent, which reads as 0 just like counters.
        got = doc.get("gauges", {}).get(name, 0)
        if got != want:
            fail(f"{path}: gauge {name} is {got}, expected {want}")
        checked.append(f"{name}={got}")
    for name in args.quantile:
        hist = doc.get("histograms", {}).get(name)
        if hist is None:
            fail(f"{path}: histogram {name} missing")
        if not hist.get("count", 0) > 0:
            fail(f"{path}: histogram {name} is empty")
        quant = hist.get("quantiles")
        if not isinstance(quant, dict):
            fail(f"{path}: histogram {name} lacks a quantiles object")
        check_quantiles(quant, f"{path}: histogram {name}")
        checked.append(f"{name}.p50={quant['p50']}")
    extra = f" {' '.join(checked)}" if checked else ""
    print(f"check_obs_json: OK: {path}: hit={hits} "
          f"computed={computed}{extra}")


def check_quantiles(quant, where):
    for key in ("p50", "p90", "p99"):
        if not isinstance(quant.get(key), (int, float)):
            fail(f"{where}: quantiles lack numeric {key!r}: {quant}")
    if not 0 <= quant["p50"] <= quant["p90"] <= quant["p99"]:
        fail(f"{where}: quantiles out of order: {quant}")


def check_stats(path):
    doc = load(path)
    if doc.get("ok") is not True or doc.get("op") != "stats":
        fail(f"{path}: not a successful stats reply: "
             f"ok={doc.get('ok')!r} op={doc.get('op')!r}")
    result = doc.get("result", {})
    for key in ("generation", "benchmarks", "indexed", "uptime_s",
                "requests", "connections"):
        if key not in result:
            fail(f"{path}: stats result lacks {key!r}")
    if not result["uptime_s"] > 0:
        fail(f"{path}: uptime_s is {result['uptime_s']}")
    reqs = result["requests"]
    by_op = reqs.get("by_op")
    ops = {"ping", "stats", "profile", "knn", "radius", "redundant",
           "suites", "reindex"}
    if not isinstance(by_op, dict) or set(by_op) != ops:
        fail(f"{path}: by_op keys are {sorted(by_op or {})}, "
             f"expected {sorted(ops)}")
    # The total counts every received line (unparseable ones too), so
    # it can only exceed the per-op sum, never trail it.
    if reqs.get("total", 0) < sum(by_op.values()):
        fail(f"{path}: total {reqs.get('total')} < per-op sum "
             f"{sum(by_op.values())}")
    # This reply answers its own stats request, so at least one
    # request was seen and timed.
    if by_op["stats"] < 1:
        fail(f"{path}: by_op.stats is {by_op['stats']}")
    lat = reqs.get("latency_us", {})
    if not lat.get("count", 0) > 0:
        fail(f"{path}: latency_us.count is {lat.get('count')}")
    check_quantiles(lat, f"{path}: latency_us")
    conns = result["connections"]
    for key in ("open", "accepted", "rejected", "quarantined"):
        if key not in conns:
            fail(f"{path}: connections lack {key!r}")
    # The querying client itself holds a connection open right now.
    if conns["accepted"] < 1 or conns["open"] < 1:
        fail(f"{path}: connections implausible: {conns}")
    print(f"check_obs_json: OK: {path}: total={reqs.get('total')} "
          f"latency p50={lat['p50']:.1f}us p99={lat['p99']:.1f}us "
          f"uptime={result['uptime_s']:.1f}s")


def main():
    p = argparse.ArgumentParser()
    p.add_argument("kind", choices=["trace", "metrics", "stats"])
    p.add_argument("file")
    p.add_argument("--expect-prefixes", default="")
    p.add_argument("--hits", type=int)
    p.add_argument("--computed", type=int)
    p.add_argument("--total", type=int)
    p.add_argument("--counter", action="append", default=[],
                   metavar="NAME=N")
    p.add_argument("--counter-min", action="append", default=[],
                   metavar="NAME=N")
    p.add_argument("--gauge", action="append", default=[],
                   metavar="NAME=N")
    p.add_argument("--quantile", action="append", default=[],
                   metavar="NAME")
    args = p.parse_args()

    if args.kind == "trace":
        prefixes = [s for s in args.expect_prefixes.split(",") if s]
        check_trace(args.file, prefixes)
    elif args.kind == "stats":
        check_stats(args.file)
    else:
        check_metrics(args.file, args)


if __name__ == "__main__":
    main()
