#!/usr/bin/env python3
"""Validate the telemetry JSON a `mica` run exported.

CI runs a suite profile with --metrics/--trace-out and then asserts,
via this script, that the artifacts are what the observability layer
promises: the trace is Chrome-tracing JSON with complete spans from
every instrumented layer, and the metrics snapshot's store counters
account for every benchmark in the run.

Usage:
  check_obs_json.py trace FILE --expect-prefixes=pipeline.,engine.
  check_obs_json.py metrics FILE [--hits=N] [--computed=N] [--total=N]
                    [--counter NAME=N]... [--counter-min NAME=N]...
                    [--gauge NAME=N]...

`--total` asserts hits + computed == N without pinning the split;
`--hits`/`--computed` pin the individual counters (warm-cache runs).
`--counter NAME=N` pins any counter exactly and `--counter-min NAME=N`
bounds it from below — CI's fault smoke uses these to prove the
robustness counters (pipeline.quarantined, store.retry,
store.degraded_open, failpoint.fired) actually reached the snapshot
on a faulted run. A fault counter that never fired is absent from the
snapshot, so `--counter NAME=0` accepts both absent and literal zero.
Exit status is non-zero, with a message naming the failed check, on
any violation.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_obs_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def check_trace(path, prefixes):
    doc = load(path)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    names = set()
    for i, e in enumerate(events):
        for field in ("name", "ph", "pid", "tid", "ts", "dur"):
            if field not in e:
                fail(f"{path}: event {i} lacks '{field}': {e}")
        if e["ph"] != "X":
            fail(f"{path}: event {i} is not a complete span: {e}")
        names.add(e["name"])
    for prefix in prefixes:
        if not any(n.startswith(prefix) for n in names):
            fail(f"{path}: no span named {prefix}* "
                 f"(got: {', '.join(sorted(names))})")
    print(f"check_obs_json: OK: {path}: {len(events)} spans, "
          f"layers {sorted(prefixes)} all present")


def counter(doc, path, name):
    # Counters register on their first bump, so a counter that never
    # fired (e.g. store.* on a cacheless run) is absent, not zero.
    # Reading absent as 0 keeps --total/--hits/--counter assertions
    # exact without demanding the event occurred.
    return doc.get("counters", {}).get(name, 0)


def parse_counter_spec(spec):
    name, eq, value = spec.partition("=")
    if not eq or not name:
        fail(f"bad counter spec {spec!r} (want NAME=N)")
    try:
        return name, int(value)
    except ValueError:
        fail(f"bad counter spec {spec!r}: {value!r} is not an integer")


def check_metrics(path, args):
    doc = load(path)
    if doc.get("schema") != "mica-obs-metrics/1":
        fail(f"{path}: schema is {doc.get('schema')!r}")
    if not doc.get("compiled"):
        fail(f"{path}: telemetry not compiled in")
    hits = counter(doc, path, "store.profile.hit")
    computed = counter(doc, path, "store.profile.computed")
    if args.total is not None and hits + computed != args.total:
        fail(f"{path}: hit {hits} + computed {computed} != "
             f"expected total {args.total}")
    if args.hits is not None and hits != args.hits:
        fail(f"{path}: store.profile.hit is {hits}, expected {args.hits}")
    if args.computed is not None and computed != args.computed:
        fail(f"{path}: store.profile.computed is {computed}, "
             f"expected {args.computed}")
    checked = []
    for spec in args.counter:
        name, want = parse_counter_spec(spec)
        # Counters register on first bump, so "never fired" is absent.
        got = doc.get("counters", {}).get(name, 0)
        if got != want:
            fail(f"{path}: counter {name} is {got}, expected {want}")
        checked.append(f"{name}={got}")
    for spec in args.counter_min:
        name, want = parse_counter_spec(spec)
        got = doc.get("counters", {}).get(name, 0)
        if got < want:
            fail(f"{path}: counter {name} is {got}, expected >= {want}")
        checked.append(f"{name}={got}")
    for spec in args.gauge:
        name, want = parse_counter_spec(spec)
        # Gauges fold signed deltas; one that was never touched is
        # absent, which reads as 0 just like counters.
        got = doc.get("gauges", {}).get(name, 0)
        if got != want:
            fail(f"{path}: gauge {name} is {got}, expected {want}")
        checked.append(f"{name}={got}")
    extra = f" {' '.join(checked)}" if checked else ""
    print(f"check_obs_json: OK: {path}: hit={hits} "
          f"computed={computed}{extra}")


def main():
    p = argparse.ArgumentParser()
    p.add_argument("kind", choices=["trace", "metrics"])
    p.add_argument("file")
    p.add_argument("--expect-prefixes", default="")
    p.add_argument("--hits", type=int)
    p.add_argument("--computed", type=int)
    p.add_argument("--total", type=int)
    p.add_argument("--counter", action="append", default=[],
                   metavar="NAME=N")
    p.add_argument("--counter-min", action="append", default=[],
                   metavar="NAME=N")
    p.add_argument("--gauge", action="append", default=[],
                   metavar="NAME=N")
    args = p.parse_args()

    if args.kind == "trace":
        prefixes = [s for s in args.expect_prefixes.split(",") if s]
        check_trace(args.file, prefixes)
    else:
        check_metrics(args.file, args)


if __name__ == "__main__":
    main()
