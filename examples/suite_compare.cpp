/**
 * @file
 * Compare two benchmark suites head-to-head, the way Section VI
 * compares emerging suites against SPEC CPU2000: per-suite centroids in
 * the normalized characteristic space, cross-suite nearest neighbors,
 * and the pairs that hardware counters would wrongly call "similar".
 *
 *   ./build/examples/suite_compare [suiteA suiteB] [--budget=N]
 * Defaults to BioInfoMark vs SPEC2000.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "experiments/experiments.hh"
#include "methodology/classifier.hh"
#include "methodology/workload_space.hh"
#include "report/table.hh"

using namespace mica;

int
main(int argc, char **argv)
{
    std::string suiteA = "BioInfoMark", suiteB = "SPEC2000";
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--", 2) != 0)
            positional.push_back(argv[i]);
    }
    if (positional.size() >= 2) {
        suiteA = positional[0];
        suiteB = positional[1];
    }

    auto cfg = experiments::configFromArgs(argc, argv);
    const auto ds = experiments::collectSuiteDataset(cfg);
    const WorkloadSpace mica(ds.micaMatrix());
    const WorkloadSpace hpc(ds.hpcMatrix());

    std::vector<size_t> idxA, idxB;
    for (size_t i = 0; i < ds.benchmarks.size(); ++i) {
        if (ds.benchmarks[i].suite == suiteA)
            idxA.push_back(i);
        if (ds.benchmarks[i].suite == suiteB)
            idxB.push_back(i);
    }
    if (idxA.empty() || idxB.empty()) {
        std::printf("unknown suite; choose from:");
        for (const auto &s : experiments::suiteNames())
            std::printf(" %s", s.c_str());
        std::printf("\n");
        return 1;
    }
    std::printf("%s: %zu benchmarks, %s: %zu benchmarks\n\n",
                suiteA.c_str(), idxA.size(), suiteB.c_str(),
                idxB.size());

    // For each suite-A benchmark: its nearest suite-B neighbor in both
    // spaces, flagging the disagreements the paper warns about.
    const double micaThr = 0.2 * mica.distances().maxDistance();
    const double hpcThr = 0.2 * hpc.distances().maxDistance();

    report::TextTable t({"benchmark", "nearest in " + suiteB,
                         "MICA dist", "HPC dist", "verdict"},
                        {report::Align::Left, report::Align::Left,
                         report::Align::Right, report::Align::Right,
                         report::Align::Left});
    size_t covered = 0, misleading = 0;
    for (size_t a : idxA) {
        size_t best = idxB[0];
        double bestD = 1e300;
        for (size_t b : idxB) {
            const double d = mica.distances().at(a, b);
            if (d < bestD) {
                bestD = d;
                best = b;
            }
        }
        const double hd = hpc.distances().at(a, best);
        const bool micaSim = bestD <= micaThr;
        const bool hpcSim = hd <= hpcThr;
        const char *verdict =
            micaSim ? "covered"
                    : (hpcSim ? "HPC-misleading" : "distinct");
        covered += micaSim;
        misleading += (!micaSim && hpcSim);
        t.addRow({ds.benchmarks[a].shortName(),
                  ds.benchmarks[best].shortName(),
                  report::TextTable::num(bestD, 3),
                  report::TextTable::num(hd, 3), verdict});
    }
    std::printf("%s\n",
                t.render(suiteA + " vs " + suiteB +
                         " (nearest-neighbor view)").c_str());

    std::printf("summary: %zu/%zu %s benchmarks are covered by %s "
                "behavior;\n", covered, idxA.size(), suiteA.c_str(),
                suiteB.c_str());
    std::printf("%zu look covered to hardware counters but are "
                "inherently different\n(\"HPC-misleading\" — the "
                "pitfall of Section IV).\n\n", misleading);

    // Suite-level centroid distance for a one-number comparison.
    const Matrix &norm = mica.normalized();
    std::vector<double> ca(norm.cols(), 0), cb(norm.cols(), 0);
    for (size_t a : idxA)
        for (size_t c = 0; c < norm.cols(); ++c)
            ca[c] += norm(a, c) / static_cast<double>(idxA.size());
    for (size_t b : idxB)
        for (size_t c = 0; c < norm.cols(); ++c)
            cb[c] += norm(b, c) / static_cast<double>(idxB.size());
    double d2 = 0;
    for (size_t c = 0; c < norm.cols(); ++c)
        d2 += (ca[c] - cb[c]) * (ca[c] - cb[c]);
    std::printf("suite centroid distance in the normalized 47-D "
                "space: %.3f\n", std::sqrt(d2));
    return 0;
}
