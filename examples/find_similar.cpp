/**
 * @file
 * The paper's motivating use case: you have a new application and want
 * to know whether existing benchmark suites already cover its behavior
 * — or whether it is genuinely new and deserves a seat in the suite.
 *
 * This example writes a custom kernel (a hash-join-style workload that
 * none of the 122 registry benchmarks implements), characterizes it
 * with the key microarchitecture-independent characteristics, and ranks
 * the registry benchmarks by similarity, exactly as Section VI compares
 * suites.
 *
 *   ./build/examples/find_similar [--budget=N]
 */

#include <algorithm>
#include <cstdio>

#include "experiments/experiments.hh"
#include "isa/assembler.hh"
#include "isa/interpreter.hh"
#include "mica/dataset.hh"
#include "mica/runner.hh"
#include "methodology/genetic_selector.hh"
#include "methodology/workload_space.hh"
#include "report/table.hh"
#include "workloads/kernel_lib.hh"

using namespace mica;
using namespace mica::isa;
using namespace mica::isa::reg;

namespace
{

/** Hash join: build a hash table over one relation, probe with another. */
Program
buildHashJoin()
{
    Assembler a("hash-join");
    const size_t buildRows = 2048, probeRows = 8192, slots = 4096;

    std::vector<uint64_t> build(buildRows), probe(probeRows);
    workloads::kernels::HostRng rng(2024);
    for (auto &k : build)
        k = rng.bounded(1 << 20);
    for (auto &k : probe)
        k = rng.bounded(1 << 20);

    const uint64_t buildArr = a.dataU64(build);
    const uint64_t probeArr = a.dataU64(probe);
    const uint64_t table = a.reserve(slots * 8);

    // Build phase: table[hash(key)] = key (last writer wins).
    a.li(S0, static_cast<int64_t>(buildArr));
    a.li(S1, static_cast<int64_t>(table));
    a.li(T0, static_cast<int64_t>(buildRows));
    a.label("build");
    a.ld(T1, S0, 0);
    a.muli(T2, T1, 0x9e3779b9);
    a.shri(T3, T2, 8);
    a.xor_(T2, T2, T3);
    a.li(T3, static_cast<int64_t>(slots - 1));
    a.and_(T2, T2, T3);
    a.shli(T2, T2, 3);
    a.add(T2, S1, T2);
    a.sd(T1, T2, 0);
    a.addi(S0, S0, 8);
    a.addi(T0, T0, -1);
    a.bnez(T0, "build");

    // Probe phase: count matches (data-dependent hit branch).
    a.li(S0, static_cast<int64_t>(probeArr));
    a.li(S2, 0);                        // match count
    a.li(T0, static_cast<int64_t>(probeRows));
    a.label("probe");
    a.ld(T1, S0, 0);
    a.muli(T2, T1, 0x9e3779b9);
    a.shri(T3, T2, 8);
    a.xor_(T2, T2, T3);
    a.li(T3, static_cast<int64_t>(slots - 1));
    a.and_(T2, T2, T3);
    a.shli(T2, T2, 3);
    a.add(T2, S1, T2);
    a.ld(T4, T2, 0);                    // bucket key
    a.bne(T4, T1, "miss");
    a.addi(S2, S2, 1);
    a.label("miss");
    a.addi(S0, S0, 8);
    a.addi(T0, T0, -1);
    a.bnez(T0, "probe");
    a.halt();
    return a.finish();
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cfg = experiments::configFromArgs(argc, argv);

    std::printf("characterizing the 122-benchmark population...\n");
    const auto ds = experiments::collectSuiteDataset(cfg);
    Matrix mm = ds.micaMatrix();

    std::printf("characterizing the candidate application "
                "(hash join)...\n\n");
    const Program prog = buildHashJoin();
    Interpreter interp(prog);
    MicaRunnerConfig rc;
    rc.maxInsts = cfg.maxInsts;
    const MicaProfile mine = collectMicaProfile(interp, "my-app", rc);

    // Build one space over population + candidate so normalization and
    // feature selection see a consistent picture.
    mm.appendRow(mine.toVector());
    mm.rowNames.push_back("my-app/hash-join");
    const WorkloadSpace space(mm);

    GaConfig gcfg;
    const GaResult ga = geneticSelect(space, gcfg);
    std::printf("key characteristics (GA-selected, %zu of 47):",
                ga.selected.size());
    for (size_t s : ga.selected)
        std::printf(" %s", micaCharInfo(s).name);
    std::printf("\n\n");

    const DistanceMatrix dist = space.distancesForSubset(ga.selected);
    const size_t me = mm.rows() - 1;

    std::vector<std::pair<double, size_t>> ranked;
    for (size_t i = 0; i < me; ++i)
        ranked.push_back({dist.at(me, i), i});
    std::sort(ranked.begin(), ranked.end());

    report::TextTable t({"rank", "benchmark", "distance"},
                        {report::Align::Right, report::Align::Left,
                         report::Align::Right});
    for (size_t r = 0; r < 10; ++r) {
        t.addRow({std::to_string(r + 1),
                  ds.benchmarks[ranked[r].second].fullName(),
                  report::TextTable::num(ranked[r].first, 3)});
    }
    std::printf("%s\n",
                t.render("Most similar existing benchmarks").c_str());

    const double maxDist = dist.maxDistance();
    const double nearest = ranked.front().first;
    std::printf("nearest distance %.3f vs population max %.3f "
                "(%.0f%% of max)\n", nearest, maxDist,
                100.0 * nearest / maxDist);
    if (nearest < 0.2 * maxDist) {
        std::printf("=> existing suites already cover this behavior; "
                    "adding it to a suite would\n   mostly add "
                    "simulation time (Section I's argument).\n");
    } else {
        std::printf("=> this application is inherently different from "
                    "everything in the table --\n   a candidate for "
                    "inclusion in a next-generation suite.\n");
    }
    return 0;
}
