/**
 * @file
 * The payoff of feature selection (Section V): measuring only the key
 * characteristics. This example profiles a benchmark twice — once
 * collecting all 47 characteristics, once collecting only the paper's
 * Table IV set through collectMicaProfileSubset — times both, and
 * verifies the subset values match the full run.
 *
 *   ./build/examples/reduced_profiling [--budget=N]
 */

#include <chrono>
#include <cmath>
#include <cstdio>

#include "isa/interpreter.hh"
#include "mica/profile.hh"
#include "mica/runner.hh"
#include "report/table.hh"
#include "workloads/registry.hh"

using namespace mica;

namespace
{

/** The eight characteristics of the paper's Table IV. */
const std::vector<size_t> &
paperKeyCharacteristics()
{
    static const std::vector<size_t> key = {
        PctLoads,               // 1. percentage loads
        AvgInputOperands,       // 11. avg. number of input operands
        RegDepLe8,              // 16. prob. register dependence <= 8
        LocalLoadStrideLe64,    // 26. prob. local load stride <= 64
        GlobalLoadStrideLe512,  // 32. prob. global load stride <= 512
        LocalStoreStrideLe4096, // 38. prob. local store stride <= 4096
        DWorkSet4K,             // 21. D-stream working set, 4KB pages
        Ilp256,                 // 10. ILP for a 256-entry window
    };
    return key;
}

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t budget = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--budget=", 9) == 0)
            budget = std::strtoull(argv[i] + 9, nullptr, 10);
    }

    const auto &reg = workloads::BenchmarkRegistry::instance();
    const auto *entry = reg.find("BioInfoMark/clustalw.clustalw");
    const isa::Program prog = entry->build();

    MicaRunnerConfig cfg;
    cfg.maxInsts = budget;

    // Full 47-characteristic collection.
    isa::Interpreter interp(prog);
    const auto t0 = std::chrono::steady_clock::now();
    const MicaProfile full = collectMicaProfile(interp, "full", cfg);
    const auto t1 = std::chrono::steady_clock::now();

    // Key-subset collection: only the analyzers those eight
    // characteristics require are instantiated (no PPM predictors, in
    // particular — the most expensive family).
    interp.reset();
    const auto t2 = std::chrono::steady_clock::now();
    const MicaProfile key = collectMicaProfileSubset(
        interp, "key", paperKeyCharacteristics(), cfg);
    const auto t3 = std::chrono::steady_clock::now();

    report::TextTable t({"characteristic", "full run", "key-subset run",
                         "match"},
                        {report::Align::Left, report::Align::Right,
                         report::Align::Right, report::Align::Right});
    bool allMatch = true;
    for (size_t s : paperKeyCharacteristics()) {
        const bool ok = std::fabs(full[s] - key[s]) < 1e-12;
        allMatch = allMatch && ok;
        t.addRow({micaCharInfo(s).describe,
                  report::TextTable::num(full[s], 4),
                  report::TextTable::num(key[s], 4), ok ? "yes" : "NO"});
    }
    std::printf("%s\n",
                t.render("Table IV characteristics, measured both "
                         "ways").c_str());

    const double tFull = seconds(t0, t1);
    const double tKey = seconds(t2, t3);
    std::printf("benchmark: %s (%llu dynamic instructions)\n",
                entry->info.fullName().c_str(),
                static_cast<unsigned long long>(full.instCount));
    std::printf("full 47-characteristic pass: %.3f s\n", tFull);
    std::printf("key 8-characteristic pass:   %.3f s  (%.1fX faster)\n",
                tKey, tFull / tKey);
    std::printf("paper: 110 machine-days -> ~37 machine-days "
                "(approximately 3X)\n");
    std::printf("subset values match the full run: %s\n",
                allMatch ? "yes" : "NO");
    return allMatch ? 0 : 1;
}
