/**
 * @file
 * Quickstart: write a tiny kernel against the mini-ISA, execute it, and
 * collect its full 47-characteristic MICA profile plus the simulated
 * hardware-counter profile — the two datasets everything else in this
 * library is built from.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "isa/interpreter.hh"
#include "mica/profile.hh"
#include "mica/runner.hh"
#include "report/table.hh"
#include "uarch/hpc_runner.hh"

using namespace mica;
using namespace mica::isa;
using namespace mica::isa::reg;

namespace
{

/** A 256-element dot product: the "hello world" of kernels. */
Program
buildDotProduct()
{
    Assembler a("dot-product");

    std::vector<double> xs(256), ys(256);
    for (size_t i = 0; i < xs.size(); ++i) {
        xs[i] = 0.25 * static_cast<double>(i % 17);
        ys[i] = 0.5 * static_cast<double>(i % 5);
    }
    const uint64_t x = a.dataF64(xs);
    const uint64_t y = a.dataF64(ys);

    a.li(S0, static_cast<int64_t>(x));
    a.li(S1, static_cast<int64_t>(y));
    a.li(T0, 256);                      // loop counter
    a.li(S9, 200);                      // outer repetitions

    a.label("outer");
    a.li(S0, static_cast<int64_t>(x));
    a.li(S1, static_cast<int64_t>(y));
    a.li(T0, 256);
    a.label("loop");
    a.fld(1, S0, 0);                    // x[i]
    a.fld(2, S1, 0);                    // y[i]
    a.fmul(3, 1, 2);
    a.fadd(0, 0, 3);                    // acc += x[i] * y[i]
    a.addi(S0, S0, 8);
    a.addi(S1, S1, 8);
    a.addi(T0, T0, -1);
    a.bnez(T0, "loop");
    a.addi(S9, S9, -1);
    a.bnez(S9, "outer");
    a.halt();
    return a.finish();
}

} // namespace

int
main()
{
    // 1. Build a program (any TraceSource works: the interpreter, a
    //    replay buffer, or your own trace reader).
    const Program prog = buildDotProduct();
    std::printf("assembled '%s': %zu static instructions, %zu data "
                "bytes\n\n",
                prog.name.c_str(), prog.code.size(), prog.dataBytes());

    // 2. Collect the 47 microarchitecture-independent characteristics
    //    in one pass over the dynamic instruction stream.
    Interpreter interp(prog);
    const MicaProfile p = collectMicaProfile(interp, prog.name, {});
    std::printf("profiled %llu dynamic instructions\n\n",
                static_cast<unsigned long long>(p.instCount));

    report::TextTable t({"no.", "characteristic", "value"},
                        {report::Align::Right, report::Align::Left,
                         report::Align::Right});
    for (size_t c = 0; c < kNumMicaChars; ++c) {
        t.addRow({std::to_string(c + 1), micaCharInfo(c).describe,
                  report::TextTable::num(p[c], 4)});
    }
    std::printf("%s\n",
                t.render("MICA profile (Table II order)").c_str());

    // 3. The microarchitecture-DEPENDENT view of the same program: what
    //    hardware performance counters on an EV56/EV67-class machine
    //    would report.
    interp.reset();
    const uarch::HwCounterProfile h =
        uarch::collectHwProfile(interp, prog.name);
    std::printf("hardware-counter view: IPC(in-order)=%.2f "
                "IPC(out-of-order)=%.2f\n", h.ipcEv56, h.ipcEv67);
    std::printf("  branch miss %.4f | L1D miss %.4f | L1I miss %.4f | "
                "L2 miss %.4f | DTLB miss %.4f\n",
                h.branchMissRate, h.l1dMissRate, h.l1iMissRate,
                h.l2MissRate, h.dtlbMissRate);
    std::printf("\nNext: examples/find_similar shows how to compare "
                "your kernel against the\n122-benchmark population "
                "using these characteristics.\n");
    return 0;
}
